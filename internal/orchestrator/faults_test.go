package orchestrator

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestJournalTornTailEveryTruncationOffset is the byte-level pin for
// truncate-and-continue: the journal is cut at EVERY offset inside its
// final record (from "one byte of it written" to "all but the trailing
// newline"), and each cut must (a) open without error, (b) preserve
// every intact record, (c) lose at most the torn one, and (d) leave a
// physically valid JSONL file behind.
func TestJournalTornTailEveryTruncationOffset(t *testing.T) {
	dir := t.TempDir()
	master := filepath.Join(dir, "master.journal")

	j := journalAt(t, master)
	done, _ := quickJob("403.gcc").Normalize()
	keep, _ := quickJob("429.mcf").Normalize()
	last, _ := quickJob("434.zeusmp").Normalize()
	j.submitted("job-000001", done.Key(), RequestOf(done))
	j.ended("job-000001", done.Key(), StatusDone)
	j.submitted("job-000002", keep.Key(), RequestOf(keep))
	j.submitted("job-000003", last.Key(), RequestOf(last)) // the record to tear
	j.Close()

	data, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("master journal does not end in a newline")
	}
	lastStart := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1

	check := func(cut int, wantBench []string) {
		t.Helper()
		path := filepath.Join(dir, "cut.journal")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jc, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("cut=%d: open failed: %v", cut, err)
		}
		pend := jc.Pending()
		jc.Close()
		var got []string
		for _, req := range pend {
			got = append(got, req.Benchmark)
		}
		if len(got) != len(wantBench) {
			t.Fatalf("cut=%d: pending = %v, want %v", cut, got, wantBench)
		}
		for i := range got {
			if got[i] != wantBench[i] {
				t.Fatalf("cut=%d: pending = %v, want %v", cut, got, wantBench)
			}
		}
		// The file on disk (compacted at open) must be pure valid JSONL.
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range bytes.Split(after, []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			var ev journalEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatalf("cut=%d: invalid line survives reopen: %q", cut, line)
			}
		}
	}

	// Every strict prefix of the final record, including the no-newline
	// full record at cut == len(data)-1: the torn submit is lost, the
	// intact ones stay, the open never fails.
	for cut := lastStart + 1; cut < len(data); cut++ {
		check(cut, []string{"429.mcf"})
	}
	// Control cases: cleanly ended record set and the untouched file.
	check(lastStart, []string{"429.mcf"})
	check(len(data), []string{"429.mcf", "434.zeusmp"})
}

// TestJournalHugeTornTailDoesNotPoisonOpen pins the actual bug: a torn
// tail larger than any line-scanner buffer used to fail OpenJournal
// outright (bufio.ErrTooLong), turning one torn append into a lost
// queue. Now it is truncated and the journal continues.
func TestJournalHugeTornTailDoesNotPoisonOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.journal")
	j := journalAt(t, path)
	job, _ := quickJob("403.gcc").Normalize()
	j.submitted("job-000001", job.Key(), RequestOf(job))
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// 2 MiB of torn garbage, no newline.
	garbage := bytes.Repeat([]byte("x"), 2<<20)
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open with 2MiB torn tail failed: %v", err)
	}
	defer j2.Close()
	pend := j2.Pending()
	if len(pend) != 1 || pend[0].Benchmark != "403.gcc" {
		t.Fatalf("pending through huge torn tail = %+v, want the intact submit", pend)
	}
	if info, _ := os.Stat(path); info.Size() >= int64(len(garbage)) {
		t.Fatalf("journal still holds %d bytes; torn tail not truncated", info.Size())
	}
}

// TestCacheSweepsTmpOrphansAtOpen: stale write debris is deleted when a
// cache opens over the directory; fresh temps and real entries survive.
func TestCacheSweepsTmpOrphansAtOpen(t *testing.T) {
	dir := t.TempDir()
	seed := NewCache(0, dir)
	job, _ := quickJob("403.gcc").Normalize()
	seed.Put(job.Key(), stubResult(job))

	stale := filepath.Join(dir, "."+job.Key()+".json.tmp-111")
	fresh := filepath.Join(dir, "."+job.Key()+".json.tmp-222")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte(`{"half":`), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * tmpOrphanGrace)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	c := NewCache(0, dir)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale orphan survived the open-time sweep")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp (possibly a live writer) was swept")
	}
	if res, ok := c.Get(job.Key()); !ok || !res.Valid() {
		t.Error("real cache entry lost to the sweep")
	}
}

// TestCacheWriteFaultsDegradeAndRecover: consecutive injected store
// failures flip Degraded; one successful write clears it.
func TestCacheWriteFaultsDegradeAndRecover(t *testing.T) {
	c := NewCache(0, t.TempDir())
	in := faultinject.New(31)
	in.Enable(faultinject.PointCacheWrite, faultinject.Plan{Rate: 1})
	c.SetFaults(in)

	benches := []string{"403.gcc", "429.mcf", "434.zeusmp"}
	for i, b := range benches {
		job, _ := quickJob(b).Normalize()
		c.Put(job.Key(), stubResult(job))
		if got, want := c.Degraded(), i == len(benches)-1; got != want {
			t.Fatalf("Degraded after %d failed writes = %v, want %v", i+1, got, want)
		}
	}
	in.Disable(faultinject.PointCacheWrite)
	job, _ := quickJob("482.sphinx3").Normalize()
	c.Put(job.Key(), stubResult(job))
	if c.Degraded() {
		t.Fatal("Degraded still set after a successful write")
	}
	// Memory-only caches never degrade, whatever the counters say.
	mem := NewCache(0, "")
	mem.SetFaults(in)
	if mem.Degraded() {
		t.Fatal("memory-only cache reports Degraded")
	}
}

// TestCacheReadFaults: an injected short read discards the entry as
// corrupt (recompute-once semantics); an injected read error is a miss
// that leaves the file alone.
func TestCacheReadFaults(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(0, dir)
	job, _ := quickJob("403.gcc").Normalize()
	c.Put(job.Key(), stubResult(job))

	in := faultinject.New(32)
	// A fresh cache so the lookup must go to disk.
	c2 := NewCache(0, dir)
	c2.SetFaults(in)
	in.Enable(faultinject.PointCacheRead, faultinject.Plan{Rate: 1, MaxFires: 1})
	if _, ok := c2.Get(job.Key()); ok {
		t.Fatal("hit through an injected read error")
	}
	if _, err := os.Stat(filepath.Join(dir, job.Key()+".json")); err != nil {
		t.Fatal("plain read error deleted the entry")
	}
	// Fault budget spent: the entry is readable again.
	if _, ok := c2.Get(job.Key()); !ok {
		t.Fatal("entry unreadable after fault budget spent")
	}

	// Short read: the prefix fails to decode and the corrupt-entry path
	// removes the file so it is recomputed exactly once.
	c3 := NewCache(0, dir)
	c3.SetFaults(in)
	in.Enable(faultinject.PointCacheRead, faultinject.Plan{Rate: 1, MaxFires: 1, Tear: 0.4})
	if _, ok := c3.Get(job.Key()); ok {
		t.Fatal("hit through an injected short read")
	}
	if _, err := os.Stat(filepath.Join(dir, job.Key()+".json")); !os.IsNotExist(err) {
		t.Fatal("short-read-corrupted entry not discarded")
	}
}

// TestDegradedReadOnlyMode drives the full degraded-mode contract
// through the orchestrator: persistent journal write failures reject
// new submits with ErrDegraded, cached results are still served, and a
// healed disk is detected through the probe write so submissions
// resume without intervention.
func TestDegradedReadOnlyMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.journal")
	j := journalAt(t, path)
	in := faultinject.New(33)
	j.SetFaults(in)

	o := New(Config{Workers: 1, Journal: j, Run: countingRun(&sync.Mutex{}, new(int))})
	defer func() { o.Close(); j.Close() }()

	// Healthy: a job runs end to end (and its result is memoized).
	first, err := o.Submit(quickJob("403.gcc"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, o, first.ID)

	// Sick disk: every append fails. Keep submitting until the
	// consecutive-failure threshold trips (each accepted job costs a
	// submit append plus, asynchronously, an end append).
	in.Enable(faultinject.PointJournalAppend, faultinject.Plan{Rate: 1})
	burn := []string{"429.mcf", "434.zeusmp", "470.lbm"}
	for i := 0; i < 20 && !j.Degraded(); i++ {
		rec, err := o.Submit(quickJob(burn[i%len(burn)]))
		if errors.Is(err, ErrDegraded) {
			break
		}
		if err != nil {
			t.Fatalf("submit during burn-in: %v", err)
		}
		waitDone(t, o, rec.ID)
	}
	if !j.Degraded() || !o.Degraded() {
		t.Fatal("journal not degraded after persistent append failures")
	}
	if !o.Metrics().Degraded {
		t.Fatal("Metrics().Degraded = false while degraded")
	}

	// New work is refused...
	if _, err := o.Submit(quickJob("482.sphinx3")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("submit while degraded = %v, want ErrDegraded", err)
	}
	// ...but cached results are still served.
	rec, err := o.Submit(quickJob("403.gcc"))
	if err != nil || rec.Status != StatusDone {
		t.Fatalf("cached submit while degraded: rec=%+v err=%v", rec, err)
	}

	// Disk heals. The first submit may still be rejected — it carries
	// the probe that detects the recovery (a late end-append from the
	// burn-in can also reset the counter first); the retry must land.
	in.Disable(faultinject.PointJournalAppend)
	rec2, err := o.Submit(quickJob("482.sphinx3"))
	if errors.Is(err, ErrDegraded) {
		rec2, err = o.Submit(quickJob("482.sphinx3"))
	}
	if err != nil {
		t.Fatalf("submit after successful probe: %v", err)
	}
	waitDone(t, o, rec2.ID)
	if o.Degraded() || o.Metrics().Degraded {
		t.Fatal("still degraded after recovery")
	}
}

// TestServerDegraded503: the HTTP layer maps ErrDegraded to 503 with a
// Retry-After hint while reads keep answering.
func TestServerDegraded503(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.journal")
	j := journalAt(t, path)
	in := faultinject.New(34)
	j.SetFaults(in)
	in.Enable(faultinject.PointJournalAppend, faultinject.Plan{Rate: 1})
	// Burn the journal straight to the threshold.
	job, _ := quickJob("403.gcc").Normalize()
	for i := 0; i < degradedAfter; i++ {
		j.ended("job-000000", job.Key(), StatusDone)
	}

	o := New(Config{Workers: 1, Journal: j, Run: countingRun(&sync.Mutex{}, new(int))})
	defer func() { o.Close(); j.Close() }()
	srv := NewServer(o)

	body := strings.NewReader(`{"hierarchy":"conventional","benchmark":"403.gcc","mode":"quick","seed":1}`)
	req := httptest.NewRequest("POST", "/v1/jobs", body)
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if rw.Code != 503 {
		t.Fatalf("submit while degraded = %d, want 503", rw.Code)
	}
	if rw.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Reads stay up.
	getReq := httptest.NewRequest("GET", "/v1/jobs", nil)
	getRW := httptest.NewRecorder()
	srv.ServeHTTP(getRW, getReq)
	if getRW.Code != 200 {
		t.Fatalf("GET while degraded = %d, want 200", getRW.Code)
	}
}
