package orchestrator

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/trace"
	"repro/internal/workload"
)

// recordTestTrace captures a small real run for end-to-end tests.
func recordTestTrace(t *testing.T) (*trace.Trace, exp.Result) {
	t.Helper()
	prof, ok := workload.ByName("400.perlbench")
	if !ok {
		t.Fatal("missing catalog benchmark")
	}
	mode := exp.Mode{Name: "trace-test", Warmup: 500, Measure: 2_500}
	res, tr := exp.RecordOneCtx(context.Background(), exp.Spec{Kind: hier.LNUCAL3, Levels: 3}, prof, mode, 1, nil)
	if res.Err != nil {
		t.Fatalf("record: %v", res.Err)
	}
	return tr, res
}

func validTraceID() string { return strings.Repeat("ab", 32) }

// TestTraceRequestValidation: a Request naming both trace and benchmark
// (or mix/cores), or pinning windows/seed alongside a trace, is rejected
// with a clear error — the library entry path of the satellite checks.
func TestTraceRequestValidation(t *testing.T) {
	id := validTraceID()
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"trace+benchmark", Request{Hierarchy: "ln+l3", Trace: id, Benchmark: "403.gcc"}, "not both"},
		{"trace+mix", Request{Hierarchy: "ln+l3", Trace: id, Cores: 4, Mix: "mixed"}, "single-core"},
		{"trace+cores", Request{Hierarchy: "ln+l3", Trace: id, Cores: 2}, "single-core"},
		{"trace+mode", Request{Hierarchy: "ln+l3", Trace: id, Mode: "full"}, "drop mode"},
		{"trace+warmup", Request{Hierarchy: "ln+l3", Trace: id, Warmup: 100}, "drop mode"},
		{"trace+measure", Request{Hierarchy: "ln+l3", Trace: id, Measure: 100}, "drop mode"},
		{"trace+seed", Request{Hierarchy: "ln+l3", Trace: id, Seed: 3}, "seed"},
		{"malformed-id", Request{Hierarchy: "ln+l3", Trace: "not-a-hash"}, "malformed trace id"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.req.Job()
			if err == nil {
				t.Fatalf("%+v should be rejected", c.req)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q should mention %q", err, c.want)
			}
		})
	}
}

// TestTraceJobNormalization: a valid trace request normalizes to a
// canonical single-core job with empty mode/seed, and round-trips
// through RequestOf.
func TestTraceJobNormalization(t *testing.T) {
	id := validTraceID()
	j, err := Request{Hierarchy: "lnuca", Trace: id, Levels: 0}.Job()
	if err != nil {
		t.Fatal(err)
	}
	if j.Trace != id || j.Levels != 3 || j.Seed != 0 || j.Mode != (exp.Mode{}) {
		t.Errorf("normalized trace job wrong: %+v", j)
	}
	if j.Hierarchy != "LN3-144KB" {
		t.Errorf("hierarchy label = %q", j.Hierarchy)
	}
	back := RequestOf(j)
	if back.Trace != id || back.Mode != "" || back.Warmup != 0 || back.Seed != 0 {
		t.Errorf("RequestOf(trace job) leaks pinned fields: %+v", back)
	}
	k1, err := back.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != j.Key() {
		t.Error("RequestOf round trip changed the content key")
	}
}

// TestTraceJobKeyGolden pins the trace-run canon shape, and
// TestJobKeyGolden (cmp_test.go) separately proves non-trace keys are
// byte-for-byte what they were before the trace subsystem existed.
func TestTraceJobKeyGolden(t *testing.T) {
	id := validTraceID()
	golden := []struct {
		job Job
		key string
	}{
		{Job{Kind: hier.LNUCAL3, Levels: 3, Trace: id},
			"a2eba9ad32491dd885a20c72243292f7b0ed67e656b8d936a0c14c2fba363f59"},
		{Job{Kind: hier.Conventional, Trace: id},
			"343b589dc154a16bd0f0c5ecb0fd480d19d3f6157be664471b7c5d5d328bf25e"},
	}
	for i, g := range golden {
		n, err := g.job.Normalize()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := n.Key(); got != g.key {
			t.Errorf("case %d: trace key drifted:\n got %s\nwant %s", i, got, g.key)
		}
	}
	// Same trace on different hierarchies (or depths) must be distinct
	// computations.
	keys := map[string]bool{}
	for _, j := range []Job{
		{Kind: hier.Conventional, Trace: id},
		{Kind: hier.LNUCAL3, Levels: 2, Trace: id},
		{Kind: hier.LNUCAL3, Levels: 3, Trace: id},
		{Kind: hier.LNUCADNUCA, Levels: 3, Trace: id},
	} {
		n, err := j.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		if keys[n.Key()] {
			t.Fatalf("duplicate trace key for %+v", j)
		}
		keys[n.Key()] = true
	}
}

// TestSubmitTraceUnknown: submitting a trace job whose stream was never
// uploaded fails at submit time, not minutes later in a worker.
func TestSubmitTraceUnknown(t *testing.T) {
	o := New(Config{Workers: 1})
	defer o.Close()
	_, err := o.Submit(Job{Kind: hier.LNUCAL3, Trace: validTraceID()})
	if err == nil || !strings.Contains(err.Error(), "unknown trace") {
		t.Fatalf("want unknown-trace error, got %v", err)
	}
}

// TestOrchestratorTraceRun is the service-side end-to-end: ingest a
// recorded trace into the store, submit a trace job, and get back
// exactly the statistics the live recording run measured.
func TestOrchestratorTraceRun(t *testing.T) {
	tr, live := recordTestTrace(t)
	o := New(Config{Workers: 1})
	defer o.Close()
	hdr, err := o.Traces().Put(tr)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := o.Submit(Job{Kind: hier.LNUCAL3, Levels: 3, Trace: hdr.ID})
	if err != nil {
		t.Fatal(err)
	}
	rec = waitTerminal(t, o, rec.ID)
	if rec.Status != StatusDone {
		t.Fatalf("trace job %s: %s (%s)", rec.ID, rec.Status, rec.Error)
	}
	res := rec.Result
	if res.Benchmark != "400.perlbench" {
		t.Errorf("replay lost provenance: benchmark %q", res.Benchmark)
	}
	if res.IPC != live.IPC || res.Cycles != live.Cycles {
		t.Errorf("replay diverged: IPC %v/%v cycles %d/%d", res.IPC, live.IPC, res.Cycles, live.Cycles)
	}
	if res.Stats.String() != live.Stats.String() {
		t.Error("replay statistics diverged from the live run")
	}
	if res.LoadLatency == nil || res.LoadLatency.Count() == 0 {
		t.Error("trace result missing the load-latency histogram")
	}

	// The identical resubmission is a cache hit, not a re-simulation.
	again, err := o.Submit(Job{Kind: hier.LNUCAL3, Levels: 3, Trace: hdr.ID})
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != StatusDone || !again.Cached {
		t.Errorf("resubmission not served from cache: %+v", again)
	}
}

func waitTerminal(t *testing.T, o *Orchestrator, id string) JobRecord {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec, ok := o.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if rec.Status.Terminal() {
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never terminated", id)
	return JobRecord{}
}

// TestHTTPTraceEndpoints drives the upload/list/replay surface over
// HTTP: POST /v1/traces, GET /v1/traces, GET /v1/traces/{id}, then a
// POST /v1/jobs trace run, plus the decode-level rejections.
func TestHTTPTraceEndpoints(t *testing.T) {
	tr, live := recordTestTrace(t)
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// A real (non-stub) run path: New wires SimRunWithTraces over its
	// own cache and trace store when Run is nil.
	o := New(Config{Workers: 1})
	defer o.Close()
	srv := httptest.NewServer(NewServer(o))
	defer srv.Close()
	ts := srv.URL

	// Upload.
	resp, err := http.Post(ts+"/v1/traces", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	var hdr trace.Header
	decodeBody(t, resp, &hdr)
	if hdr.ID != tr.ID() || hdr.Benchmark != "400.perlbench" {
		t.Fatalf("upload header wrong: %+v", hdr)
	}

	// List.
	resp, err = http.Get(ts + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Traces []trace.Header `json:"traces"`
	}
	decodeBody(t, resp, &list)
	if len(list.Traces) != 1 || list.Traces[0].ID != tr.ID() {
		t.Fatalf("list = %+v", list)
	}

	// Info.
	resp, err = http.Get(ts + "/v1/traces/" + tr.ID())
	if err != nil {
		t.Fatal(err)
	}
	var info trace.Header
	decodeBody(t, resp, &info)
	if info != hdr {
		t.Fatalf("info %+v != upload header %+v", info, hdr)
	}

	// Replay via POST /v1/jobs with the trace source.
	resp = postJSON(t, ts+"/v1/jobs", map[string]interface{}{
		"hierarchy": "ln+l3",
		"levels":    3,
		"trace":     tr.ID(),
	})
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("trace job status %d", resp.StatusCode)
	}
	var rec JobRecord
	decodeBody(t, resp, &rec)
	deadline := time.Now().Add(30 * time.Second)
	for !rec.Status.Terminal() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		r2, err := http.Get(ts + "/v1/jobs/" + rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, r2, &rec)
	}
	if rec.Status != StatusDone {
		t.Fatalf("trace job: %s (%s)", rec.Status, rec.Error)
	}
	if rec.Result.IPC != live.IPC || rec.Result.Cycles != live.Cycles {
		t.Errorf("HTTP replay diverged from live: IPC %v/%v", rec.Result.IPC, live.IPC)
	}
	// The histogram survives the HTTP JSON round trip intact.
	if rec.Result.LoadLatency == nil || rec.Result.LoadLatency.Count() != live.LoadLat.Count() {
		t.Errorf("histogram lost over HTTP: %+v", rec.Result.LoadLatency)
	}

	// HTTP decode rejections (the satellite's HTTP path).
	for name, body := range map[string]map[string]interface{}{
		"trace+benchmark": {"hierarchy": "ln+l3", "trace": tr.ID(), "benchmark": "403.gcc"},
		"trace+cores":     {"hierarchy": "ln+l3", "trace": tr.ID(), "cores": 4, "mix": "mixed"},
		"trace+mode":      {"hierarchy": "ln+l3", "trace": tr.ID(), "mode": "full"},
		"trace+seed":      {"hierarchy": "ln+l3", "trace": tr.ID(), "seed": 3},
		"bad-id":          {"hierarchy": "ln+l3", "trace": "zzz"},
	} {
		resp := postJSON(t, ts+"/v1/jobs", body)
		var e struct {
			Error string `json:"error"`
		}
		decodeBody(t, resp, &e)
		if resp.StatusCode != http.StatusBadRequest || e.Error == "" {
			t.Errorf("%s: want 400 with error, got %d %q", name, resp.StatusCode, e.Error)
		}
	}

	// Uploading garbage is a 400, an unknown trace id on submit a 422.
	resp, err = http.Post(ts+"/v1/traces", "application/octet-stream", strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload: status %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, ts+"/v1/jobs", map[string]interface{}{
		"hierarchy": "ln+l3", "trace": validTraceID(),
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown trace submit: status %d, want 422", resp.StatusCode)
	}
}

// TestJobResultHistogramJSONRoundTrip: the full servable result —
// histogram included — survives marshal/unmarshal, the shape both the
// file cache and the HTTP API rely on.
func TestJobResultHistogramJSONRoundTrip(t *testing.T) {
	_, live := recordTestTrace(t)
	jr := ResultOf(live)
	data, err := json.Marshal(jr)
	if err != nil {
		t.Fatal(err)
	}
	var got JobResult
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Valid() {
		t.Fatal("round-tripped result is invalid")
	}
	if got.LoadLatency == nil {
		t.Fatal("histogram dropped")
	}
	if got.LoadLatency.Count() != jr.LoadLatency.Count() ||
		got.LoadLatency.Sum() != jr.LoadLatency.Sum() ||
		got.LoadLatency.Min() != jr.LoadLatency.Min() ||
		got.LoadLatency.Max() != jr.LoadLatency.Max() ||
		got.LoadLatency.Mean() != jr.LoadLatency.Mean() {
		t.Errorf("histogram round trip diverged: got %+v want %+v", got.LoadLatency, jr.LoadLatency)
	}
}
