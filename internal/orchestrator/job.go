// Package orchestrator is the experiment orchestration layer between the
// simulation kernel and the front-ends: the declarative run schema
// (Request, lnuca-run-v1) that the library, the CLIs and the HTTP API
// all parse into, a job model with a canonical content-addressed key,
// a memoizing result cache (in-memory LRU plus an optional JSON file
// store), a bounded priority worker pool with cancellation and
// progress, and the HTTP JSON API served by cmd/lnucad.
//
// The design premise (shared with Sniper-style NUCA studies and
// GPU-scale NOC simulation work) is that at scale the bottleneck is
// orchestration — scheduling many configurations and never recomputing
// what you already know — not the per-run kernel.
package orchestrator

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Job names one simulation: a hierarchy, its L-NUCA depth where
// applicable, a benchmark (or, in CMP mode, a core count and a workload
// mix), a run mode, and a seed. It is the normalized form of a Request —
// every front-end parses into it via Request.Job — and two Jobs with the
// same canonical Key are the same computation and share one result.
type Job struct {
	Kind      hier.Kind `json:"-"`
	Hierarchy string    `json:"hierarchy"` // paper-style name, set by Normalize
	Levels    int       `json:"levels,omitempty"`
	Benchmark string    `json:"benchmark,omitempty"`
	// Cores selects the multi-programmed CMP mode when > 1: Cores
	// out-of-order cores with private first levels over the shared LLC.
	Cores int `json:"cores,omitempty"`
	// Mix is the CMP workload spec: a named mix ("mixed", "memory", ...),
	// "random" for a seeded draw, or an explicit comma-separated
	// benchmark list. Normalize resolves it into MixBenchmarks.
	Mix string `json:"mix,omitempty"`
	// MixBenchmarks is the resolved mix, one benchmark per core — the
	// content that is keyed, so a "random" draw memoizes as the concrete
	// benchmarks it resolved to.
	MixBenchmarks []string `json:"mix_benchmarks,omitempty"`
	// Trace is a recorded stream's content hash: the job replays it
	// instead of generating a workload. The hash pins benchmark
	// provenance, seed and windows, so a trace job carries an empty Mode
	// and a zero Seed and keys on the hash alone (plus hierarchy).
	Trace string   `json:"trace,omitempty"`
	Mode  exp.Mode `json:"mode"`
	Seed  uint64   `json:"seed"`
	// Priority orders the queue: higher runs first. It is not part of
	// the content key.
	Priority int `json:"priority,omitempty"`
}

// IsMix reports whether the job is a multi-programmed CMP run.
func (j Job) IsMix() bool { return j.Cores > 1 }

// Normalize canonicalizes a job so that equivalent submissions collapse
// onto one key: defaulted seed and levels, levels cleared for
// hierarchies without an L-NUCA, benchmark validated against the
// catalog, mix resolved to concrete benchmarks, and mode reduced to its
// window sizes.
func (j Job) Normalize() (Job, error) {
	if j.Trace != "" {
		return j.normalizeTrace()
	}
	if j.Seed == 0 {
		j.Seed = 1
	}
	switch {
	case j.Cores < 0 || j.Cores > hier.MaxCMPCores:
		return j, fmt.Errorf("orchestrator: cores must be 0 (single-core) or 2..%d (CMP), got %d", hier.MaxCMPCores, j.Cores)
	case j.Cores == 1:
		return j, fmt.Errorf("orchestrator: cores 1 is not a CMP — omit cores for a single-core job, or use 2..%d with a mix", hier.MaxCMPCores)
	case j.Cores == 0 && j.Mix != "":
		return j, fmt.Errorf("orchestrator: mix %q needs cores 2..%d", j.Mix, hier.MaxCMPCores)
	case j.IsMix():
		if j.Benchmark != "" {
			return j, fmt.Errorf("orchestrator: a mix job takes cores+mix, not benchmark %q", j.Benchmark)
		}
		// The seed fixes random draws, so the resolved list — the actual
		// content — is stable and cacheable.
		resolved, err := workload.ResolveMix(j.Mix, j.Cores, j.Seed)
		if err != nil {
			return j, fmt.Errorf("orchestrator: %w", err)
		}
		j.MixBenchmarks = resolved
		j.Mix = strings.TrimSpace(j.Mix)
	default:
		j.Cores = 0
		j.Mix = ""
		j.MixBenchmarks = nil
		if _, ok := workload.ByName(j.Benchmark); !ok {
			return j, fmt.Errorf("orchestrator: unknown benchmark %q", j.Benchmark)
		}
	}
	if err := j.normalizeLevels(); err != nil {
		return j, err
	}
	if j.Mode.Warmup == 0 && j.Mode.Measure == 0 {
		j.Mode = exp.Quick
	}
	if j.Mode.Measure == 0 {
		return j, fmt.Errorf("orchestrator: mode %q specifies warmup %d with an empty measured window — a half-specified window would silently measure nothing",
			j.Mode.Name, j.Mode.Warmup)
	}
	if j.IsMix() {
		j.Hierarchy = j.MixSpec().Label()
	} else {
		j.Hierarchy = j.Spec().Label()
	}
	return j, nil
}

// normalizeLevels canonicalizes the L-NUCA depth for the job's
// hierarchy: defaulted and bounded where one exists, cleared otherwise.
func (j *Job) normalizeLevels() error {
	switch j.Kind {
	case hier.LNUCAL3, hier.LNUCADNUCA:
		if j.Levels == 0 {
			j.Levels = 3
		}
		if j.Levels < 2 || j.Levels > 6 {
			return fmt.Errorf("orchestrator: unsupported L-NUCA levels %d", j.Levels)
		}
	case hier.Conventional, hier.DNUCAOnly:
		j.Levels = 0
	default:
		return fmt.Errorf("orchestrator: unknown hierarchy kind %d", j.Kind)
	}
	return nil
}

// normalizeTrace canonicalizes a trace-replay job. The trace content
// hash pins the benchmark provenance, the seed and the windows, so a
// trace job names only a hierarchy and the hash — anything else the
// caller tried to pin alongside is a conflict, rejected loudly rather
// than silently ignored.
func (j Job) normalizeTrace() (Job, error) {
	switch {
	case j.Benchmark != "":
		return j, fmt.Errorf("orchestrator: a run replays either a trace or a benchmark, not both (trace %s, benchmark %q)", j.Trace, j.Benchmark)
	case j.Cores != 0 || j.Mix != "" || len(j.MixBenchmarks) != 0:
		return j, fmt.Errorf("orchestrator: trace runs are single-core — drop cores/mix (trace %s)", j.Trace)
	case j.Seed != 0:
		return j, fmt.Errorf("orchestrator: the trace pins the seed — drop seed %d (trace %s)", j.Seed, j.Trace)
	case j.Mode != (exp.Mode{}):
		return j, fmt.Errorf("orchestrator: the trace pins the simulation windows — drop mode/warmup/measure (trace %s)", j.Trace)
	case !trace.ValidID(j.Trace):
		return j, fmt.Errorf("orchestrator: malformed trace id %q (want a 64-hex-digit lnuca-trace-v1 content hash)", j.Trace)
	}
	if err := j.normalizeLevels(); err != nil {
		return j, err
	}
	j.Hierarchy = j.Spec().Label()
	return j, nil
}

// Spec returns the exp harness spec for a single-core job.
func (j Job) Spec() exp.Spec {
	return exp.Spec{Kind: j.Kind, Levels: j.Levels}
}

// MixSpec returns the exp harness spec for a mix job.
func (j Job) MixSpec() exp.MixSpec {
	return exp.MixSpec{Kind: j.Kind, Levels: j.Levels, Benchmarks: j.MixBenchmarks}
}

// keySchema versions the content-key format. Bump it whenever the canon
// string changes meaning, so stale on-disk results become misses instead
// of silently serving the wrong computation.
const keySchema = "lnuca-job-v2"

// Key returns the content address of a normalized job: a SHA-256 over
// every field that determines the result (mode windows, not the mode's
// display name; never the priority). The hierarchy is identified by its
// stable paper label, not the numeric enum — reordering or inserting a
// hier.Kind must never alias previously cached results.
//
// Trace jobs use their own canon shape: the trace content hash already
// pins benchmark, seed and windows, so only the hierarchy is added. The
// two shapes cannot collide ("|bench=" vs "|trace=" after the levels
// field), and non-trace canon strings are byte-for-byte what they were
// before traces existed, keeping every previously cached result
// reachable.
func (j Job) Key() string {
	var canon string
	if j.Trace != "" {
		canon = fmt.Sprintf("%s|hier=%s|levels=%d|trace=%s",
			keySchema, j.Kind.String(), j.Levels, j.Trace)
	} else {
		canon = fmt.Sprintf("%s|hier=%s|levels=%d|bench=%s|cores=%d|mix=%s|warmup=%d|measure=%d|seed=%d",
			keySchema, j.Kind.String(), j.Levels, j.Benchmark, j.Cores,
			strings.Join(j.MixBenchmarks, ","), j.Mode.Warmup, j.Mode.Measure, j.Seed)
	}
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// ParseKind maps user-facing hierarchy names (paper labels and common
// aliases, case-insensitive) onto hier.Kind.
func ParseKind(name string) (hier.Kind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "conventional", "conv", "l2", "l2-256kb":
		return hier.Conventional, nil
	case "ln+l3", "lnuca", "lnuca-l3", "lnuca+l3", "ln":
		return hier.LNUCAL3, nil
	case "dn-4x8", "dnuca", "dn":
		return hier.DNUCAOnly, nil
	case "ln+dn-4x8", "lnuca-dnuca", "lnuca+dnuca", "ln+dn":
		return hier.LNUCADNUCA, nil
	}
	return 0, fmt.Errorf("orchestrator: unknown hierarchy %q (want one of conventional, ln+l3, dn-4x8, ln+dn-4x8)", name)
}

// ParseMode resolves a mode name ("quick", "full", or "") to its window
// sizes; empty means quick.
func ParseMode(name string) (exp.Mode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "quick":
		return exp.Quick, nil
	case "full":
		return exp.Full, nil
	}
	return exp.Mode{}, fmt.Errorf("orchestrator: unknown mode %q (want quick or full)", name)
}

// JobResult is the servable measurement for one job: what exp.Result or
// exp.MixResult carries, in JSON-marshalable form. Single-core jobs fill
// Benchmark/IPC/Energy; mix jobs fill Cores/PerCore and the
// multi-programmed aggregates.
type JobResult struct {
	Config    string     `json:"config"`
	Benchmark string     `json:"benchmark,omitempty"`
	IPC       float64    `json:"ipc,omitempty"`
	Cycles    uint64     `json:"cycles"`
	EnergyPJ  [4]float64 `json:"energy_pj"` // power.Bucket order

	// CMP mode.
	Cores           int              `json:"cores,omitempty"`
	PerCore         []exp.CoreResult `json:"per_core,omitempty"`
	ThroughputIPC   float64          `json:"throughput_ipc,omitempty"`
	WeightedSpeedup float64          `json:"weighted_speedup,omitempty"`

	// LoadLatency is the measured window's load-latency histogram
	// (single-core runs).
	LoadLatency *stats.Histogram `json:"load_latency,omitempty"`

	Stats *stats.Set `json:"stats,omitempty"`

	// Phases is the wall-time and kernel-activity breakdown of the run
	// that produced this result. It describes one execution, not the
	// job's content: the result cache strips it before storing, so
	// cached results carry no Phases and cache entries stay byte-stable
	// across executions.
	Phases *exp.Phases `json:"phases,omitempty"`
}

// Valid reports whether a decoded result is structurally plausible: the
// file-store uses it to tell a real result from a truncated or foreign
// JSON document that happens to parse.
func (r *JobResult) Valid() bool {
	if r == nil || r.Config == "" || r.Cycles == 0 {
		return false
	}
	if r.Cores > 0 {
		return len(r.PerCore) == r.Cores
	}
	return r.Benchmark != ""
}

// ResultOf converts a successful exp.Result.
func ResultOf(r exp.Result) *JobResult {
	out := &JobResult{
		Config:      r.Spec.Label(),
		Benchmark:   r.Bench.Name,
		IPC:         r.IPC,
		Cycles:      r.Cycles,
		LoadLatency: r.LoadLat,
		Stats:       r.Stats,
		Phases:      r.Phases,
	}
	for b := power.Bucket(0); b < 4; b++ {
		out.EnergyPJ[b] = r.Energy.Get(b)
	}
	return out
}

// MixResultOf converts a successful exp.MixResult; weightedSpeedup is
// computed by the caller from cached single-core baselines.
func MixResultOf(r exp.MixResult, weightedSpeedup float64) *JobResult {
	return &JobResult{
		Config:          r.Spec.Label(),
		Cores:           len(r.PerCore),
		PerCore:         r.PerCore,
		Cycles:          r.Cycles,
		ThroughputIPC:   r.Throughput,
		WeightedSpeedup: weightedSpeedup,
		Stats:           r.Stats,
		Phases:          r.Phases,
	}
}
