// Package orchestrator is the experiment orchestration layer between the
// simulation kernel and the front-ends: a job model with a canonical
// content-addressed key, a memoizing result cache (in-memory LRU plus an
// optional JSON file store), a bounded priority worker pool with
// cancellation and progress, and the HTTP JSON API served by cmd/lnucad.
//
// The design premise (shared with Sniper-style NUCA studies and
// GPU-scale NOC simulation work) is that at scale the bottleneck is
// orchestration — scheduling many configurations and never recomputing
// what you already know — not the per-run kernel.
package orchestrator

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Job names one simulation: a hierarchy, its L-NUCA depth where
// applicable, a benchmark, a run mode, and a seed. Two Jobs with the same
// canonical Key are the same computation and share one result.
type Job struct {
	Kind      hier.Kind `json:"-"`
	Hierarchy string    `json:"hierarchy"` // paper-style name, set by Normalize
	Levels    int       `json:"levels,omitempty"`
	Benchmark string    `json:"benchmark"`
	Mode      exp.Mode  `json:"mode"`
	Seed      uint64    `json:"seed"`
	// Priority orders the queue: higher runs first. It is not part of
	// the content key.
	Priority int `json:"priority,omitempty"`
}

// Normalize canonicalizes a job so that equivalent submissions collapse
// onto one key: defaulted seed and levels, levels cleared for
// hierarchies without an L-NUCA, benchmark validated against the
// catalog, and mode reduced to its window sizes.
func (j Job) Normalize() (Job, error) {
	if _, ok := workload.ByName(j.Benchmark); !ok {
		return j, fmt.Errorf("orchestrator: unknown benchmark %q", j.Benchmark)
	}
	if j.Seed == 0 {
		j.Seed = 1
	}
	switch j.Kind {
	case hier.LNUCAL3, hier.LNUCADNUCA:
		if j.Levels == 0 {
			j.Levels = 3
		}
		if j.Levels < 2 || j.Levels > 6 {
			return j, fmt.Errorf("orchestrator: unsupported L-NUCA levels %d", j.Levels)
		}
	case hier.Conventional, hier.DNUCAOnly:
		j.Levels = 0
	default:
		return j, fmt.Errorf("orchestrator: unknown hierarchy kind %d", j.Kind)
	}
	if j.Mode.Warmup == 0 && j.Mode.Measure == 0 {
		j.Mode = exp.Quick
	}
	if j.Mode.Measure == 0 {
		return j, fmt.Errorf("orchestrator: mode %q has an empty measured window", j.Mode.Name)
	}
	j.Hierarchy = j.Spec().Label()
	return j, nil
}

// Spec returns the exp harness spec for this job.
func (j Job) Spec() exp.Spec {
	return exp.Spec{Kind: j.Kind, Levels: j.Levels}
}

// Key returns the content address of a normalized job: a SHA-256 over
// every field that determines the result (mode windows, not the mode's
// display name; never the priority).
func (j Job) Key() string {
	canon := fmt.Sprintf("kind=%d|levels=%d|bench=%s|warmup=%d|measure=%d|seed=%d",
		j.Kind, j.Levels, j.Benchmark, j.Mode.Warmup, j.Mode.Measure, j.Seed)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// ParseKind maps user-facing hierarchy names (paper labels and common
// aliases, case-insensitive) onto hier.Kind.
func ParseKind(name string) (hier.Kind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "conventional", "conv", "l2", "l2-256kb":
		return hier.Conventional, nil
	case "ln+l3", "lnuca", "lnuca-l3", "lnuca+l3", "ln":
		return hier.LNUCAL3, nil
	case "dn-4x8", "dnuca", "dn":
		return hier.DNUCAOnly, nil
	case "ln+dn-4x8", "lnuca-dnuca", "lnuca+dnuca", "ln+dn":
		return hier.LNUCADNUCA, nil
	}
	return 0, fmt.Errorf("orchestrator: unknown hierarchy %q (want one of conventional, ln+l3, dn-4x8, ln+dn-4x8)", name)
}

// ParseMode resolves a mode name ("quick", "full", or "") to its window
// sizes; empty means quick.
func ParseMode(name string) (exp.Mode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "quick":
		return exp.Quick, nil
	case "full":
		return exp.Full, nil
	}
	return exp.Mode{}, fmt.Errorf("orchestrator: unknown mode %q (want quick or full)", name)
}

// JobResult is the servable measurement for one job: what exp.Result
// carries, in JSON-marshalable form.
type JobResult struct {
	Config    string     `json:"config"`
	Benchmark string     `json:"benchmark"`
	IPC       float64    `json:"ipc"`
	Cycles    uint64     `json:"cycles"`
	EnergyPJ  [4]float64 `json:"energy_pj"` // power.Bucket order
	Stats     *stats.Set `json:"stats,omitempty"`
}

// ResultOf converts a successful exp.Result.
func ResultOf(r exp.Result) *JobResult {
	out := &JobResult{
		Config:    r.Spec.Label(),
		Benchmark: r.Bench.Name,
		IPC:       r.IPC,
		Cycles:    r.Cycles,
		Stats:     r.Stats,
	}
	for b := power.Bucket(0); b < 4; b++ {
		out.EnergyPJ[b] = r.Energy.Get(b)
	}
	return out
}
