package orchestrator

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestServer wires an httptest server around a stub-backed
// orchestrator; simulated results are fabricated instantly.
func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Orchestrator) {
	t.Helper()
	if cfg.Run == nil {
		cfg.Run = func(ctx context.Context, j Job, _ func(uint64, uint64)) (*JobResult, error) {
			return stubResult(j), nil
		}
	}
	o := New(cfg)
	ts := httptest.NewServer(NewServer(o))
	t.Cleanup(func() { ts.Close(); o.Close() })
	return ts, o
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, dst interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPJobRoundTrip is the end-to-end API test: POST /v1/jobs, poll
// GET /v1/jobs/{id} until done, check the result JSON, then confirm the
// resubmission is a cache hit and /v1/results serves it directly.
func TestHTTPJobRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 2})

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]interface{}{
		"hierarchy": "ln+l3",
		"levels":    3,
		"benchmark": "403.gcc",
		"mode":      "quick",
		"seed":      1,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var rec JobRecord
	decodeBody(t, resp, &rec)
	if rec.ID == "" || rec.Status == "" {
		t.Fatalf("bad record: %+v", rec)
	}

	deadline := time.Now().Add(10 * time.Second)
	for !rec.Status.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		r, err := http.Get(ts.URL + "/v1/jobs/" + rec.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, r, &rec)
		time.Sleep(5 * time.Millisecond)
	}
	if rec.Status != StatusDone {
		t.Fatalf("final status %s (%s)", rec.Status, rec.Error)
	}
	if rec.Result == nil || rec.Result.Config != "LN3-144KB" || rec.Result.IPC <= 0 {
		t.Fatalf("result = %+v", rec.Result)
	}
	if rec.Progress != 1 {
		t.Errorf("done job progress = %v", rec.Progress)
	}

	// Resubmission: same content, served from cache with 200.
	resp2 := postJSON(t, ts.URL+"/v1/jobs", map[string]interface{}{
		"hierarchy": "ln+l3", "benchmark": "403.gcc", "seed": 1,
	})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached submit status = %d", resp2.StatusCode)
	}
	var rec2 JobRecord
	decodeBody(t, resp2, &rec2)
	if !rec2.Cached || rec2.Result == nil {
		t.Fatalf("resubmission not cached: %+v", rec2)
	}

	// Direct cache lookup.
	r3, err := http.Get(ts.URL + "/v1/results?hierarchy=ln%2bl3&levels=3&benchmark=403.gcc&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("results status = %d", r3.StatusCode)
	}
	var res JobResult
	decodeBody(t, r3, &res)
	if res.Config != "LN3-144KB" {
		t.Fatalf("results payload = %+v", res)
	}
	// And a miss 404s.
	r4, _ := http.Get(ts.URL + "/v1/results?hierarchy=dn-4x8&benchmark=403.gcc")
	if r4.StatusCode != http.StatusNotFound {
		t.Fatalf("miss status = %d", r4.StatusCode)
	}
	r4.Body.Close()
	// An invalid configuration is a 400, not a masked cache miss.
	r5, _ := http.Get(ts.URL + "/v1/results?hierarchy=ln%2bl3&levels=9&benchmark=403.gcc")
	if r5.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config status = %d", r5.StatusCode)
	}
	r5.Body.Close()
}

func TestHTTPSweepAndMetrics(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	ts, _ := newTestServer(t, Config{Workers: 4, Run: countingRun(&mu, &runs)})

	sweep := map[string]interface{}{
		"hierarchies": []string{"conventional", "ln+l3", "dn-4x8"},
		"benchmarks":  []string{"403.gcc", "429.mcf", "434.zeusmp", "482.sphinx3"},
		"mode":        "quick",
	}
	var submitted struct {
		ID   string      `json:"id"`
		Jobs []JobRecord `json:"jobs"`
	}
	resp := postJSON(t, ts.URL+"/v1/sweeps", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep status = %d", resp.StatusCode)
	}
	decodeBody(t, resp, &submitted)
	if len(submitted.Jobs) != 12 {
		t.Fatalf("sweep expanded to %d jobs, want 12", len(submitted.Jobs))
	}

	var st SweepStatus
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/sweeps/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, r, &st)
		if st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.ByState[StatusDone] != 12 {
		t.Fatalf("by_state = %v", st.ByState)
	}

	// Resubmit: all cells must come back cached, with no new runs.
	resp = postJSON(t, ts.URL+"/v1/sweeps", sweep)
	decodeBody(t, resp, &submitted)
	for _, j := range submitted.Jobs {
		if !j.Cached {
			t.Errorf("cell %s/%s not cached on resubmit", j.Job.Hierarchy, j.Job.Benchmark)
		}
	}
	mu.Lock()
	if runs != 12 {
		t.Errorf("runs = %d, want 12", runs)
	}
	mu.Unlock()

	var m Metrics
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, r, &m)
	if m.Executed != 12 || m.CacheHits != 12 || m.CacheMisses != 12 {
		t.Errorf("metrics = %+v", m)
	}
	if m.CacheHitRate != 0.5 {
		t.Errorf("hit rate = %v", m.CacheHitRate)
	}
}

func TestHTTPCancelAndErrors(t *testing.T) {
	release := make(chan struct{})
	ts, _ := newTestServer(t, Config{Workers: 1, Run: func(ctx context.Context, j Job, _ func(uint64, uint64)) (*JobResult, error) {
		select {
		case <-release:
			return stubResult(j), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	defer close(release)

	var rec JobRecord
	decodeBody(t, postJSON(t, ts.URL+"/v1/jobs", map[string]interface{}{
		"hierarchy": "conventional", "benchmark": "403.gcc",
	}), &rec)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+rec.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, _ := http.Get(ts.URL + "/v1/jobs/" + rec.ID)
		decodeBody(t, r, &rec)
		if rec.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rec.Status != StatusCanceled {
		t.Fatalf("status after cancel = %s", rec.Status)
	}

	// Error paths: bad hierarchy, bad benchmark, unknown job, bad method.
	resp = postJSON(t, ts.URL+"/v1/jobs", map[string]interface{}{
		"hierarchy": "l9", "benchmark": "403.gcc",
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad hierarchy status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/jobs", map[string]interface{}{
		"hierarchy": "conventional", "benchmark": "999.vapor",
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad benchmark status = %d", resp.StatusCode)
	}
	r, _ := http.Get(ts.URL + "/v1/jobs/job-999999")
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d", r.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/metrics", "application/json", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics status = %d", resp.StatusCode)
	}
}

func TestHTTPHealthzAndBenchmarks(t *testing.T) {
	ts, _ := newTestServer(t, Config{Workers: 1})
	var h map[string]interface{}
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, r, &h)
	if h["status"] != "ok" {
		t.Errorf("healthz = %v", h)
	}
	for _, key := range []string{"version", "commit", "go_version"} {
		if v, _ := h[key].(string); v == "" {
			t.Errorf("healthz missing %s: %v", key, h)
		}
	}
	if up, ok := h["uptime_seconds"].(float64); !ok || up < 0 {
		t.Errorf("healthz uptime = %v", h["uptime_seconds"])
	}
	var b struct {
		Benchmarks []string `json:"benchmarks"`
	}
	r, err = http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, r, &b)
	if len(b.Benchmarks) != 28 {
		t.Errorf("catalog size = %d, want 28", len(b.Benchmarks))
	}
}

// TestHTTPMetricsNegotiation: /metrics stays a JSON snapshot by default
// (the Go client depends on that), and serves Prometheus text when the
// caller asks for it via Accept or ?format=.
func TestHTTPMetricsNegotiation(t *testing.T) {
	reg := obs.NewRegistry()
	ts, o := newTestServer(t, Config{Workers: 1, Registry: reg})

	rec, err := o.Submit(quickJob("429.mcf"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, o, rec.ID)

	get := func(url, accept string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	// Default: JSON, decodable into Metrics.
	resp, body := get(ts.URL+"/metrics", "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default content type = %q", ct)
	}
	var m Metrics
	if err := json.Unmarshal([]byte(body), &m); err != nil || m.Submitted != 1 {
		t.Errorf("default /metrics not the JSON snapshot: %v %+v", err, m)
	}

	// A Prometheus scraper's Accept header selects the text format.
	promAccept := "text/plain;version=0.0.4;q=0.5,*/*;q=0.1"
	resp, body = get(ts.URL+"/metrics", promAccept)
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("negotiated content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE lnuca_jobs_submitted_total counter",
		"lnuca_jobs_submitted_total 1",
		"lnuca_jobs_completed_total 1",
		"lnuca_job_run_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}

	// ?format= overrides the Accept header in both directions.
	resp, body = get(ts.URL+"/metrics?format=prometheus", "application/json")
	if resp.Header.Get("Content-Type") != obs.ContentType || !strings.Contains(body, "lnuca_jobs_submitted_total") {
		t.Errorf("format=prometheus ignored: %q", resp.Header.Get("Content-Type"))
	}
	resp, _ = get(ts.URL+"/metrics?format=json", promAccept)
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("format=json ignored: %q", resp.Header.Get("Content-Type"))
	}

	// Without a registry, an explicit Prometheus request is a clean 406
	// rather than a silently different JSON body.
	ts2, _ := newTestServer(t, Config{Workers: 1})
	resp, _ = get(ts2.URL+"/metrics?format=prometheus", "")
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Errorf("no-registry prometheus status = %d", resp.StatusCode)
	}
}

func TestRouteLabel(t *testing.T) {
	cases := map[string]string{
		"/healthz":          "/healthz",
		"/metrics":          "/metrics",
		"/v1/jobs":          "/v1/jobs",
		"/v1/jobs/job-7":    "/v1/jobs/{id}",
		"/v1/sweeps/sw-1":   "/v1/sweeps/{id}",
		"/v1/traces/abc123": "/v1/traces/{id}",
		"/v1/benchmarks":    "/v1/benchmarks",
		"/favicon.ico":      "other",
		"/v2/jobs":          "other",
	}
	for path, want := range cases {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		if got := RouteLabel(req); got != want {
			t.Errorf("RouteLabel(%s) = %q, want %q", path, got, want)
		}
	}
}

// TestHTTPRealSimulation runs one genuine (tiny) simulation through the
// full HTTP stack, proving the service wiring down to the kernel.
func TestHTTPRealSimulation(t *testing.T) {
	o := New(Config{Workers: 2})
	ts := httptest.NewServer(NewServer(o))
	defer func() { ts.Close(); o.Close() }()

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]interface{}{
		"hierarchy": "conventional",
		"benchmark": "403.gcc",
		"warmup":    500,
		"measure":   3000,
		"seed":      1,
	})
	var rec JobRecord
	decodeBody(t, resp, &rec)
	deadline := time.Now().Add(30 * time.Second)
	for !rec.Status.Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("simulation never finished")
		}
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", ts.URL, rec.ID))
		if err != nil {
			t.Fatal(err)
		}
		decodeBody(t, r, &rec)
		time.Sleep(10 * time.Millisecond)
	}
	if rec.Status != StatusDone {
		t.Fatalf("final = %s (%s)", rec.Status, rec.Error)
	}
	if rec.Result.IPC <= 0.05 || rec.Result.IPC > 4 {
		t.Errorf("IPC = %v", rec.Result.IPC)
	}
	if rec.Result.Stats == nil || rec.Result.Stats.Counter("core.committed") == 0 {
		t.Error("stats not served")
	}
}
