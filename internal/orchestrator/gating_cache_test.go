package orchestrator

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exp"
	"repro/internal/hier"
	"repro/internal/workload"
)

// TestGatedRunCacheEntryIdentical asserts the equivalence the content
// keys make directly checkable: a gated and an ungated execution of one
// job write byte-identical <key>.json entries into the lnuca-job-v2
// file store. A single divergent counter anywhere in the machine would
// show up as a different cache file.
func TestGatedRunCacheEntryIdentical(t *testing.T) {
	job, err := Job{Kind: hier.LNUCAL3, Levels: 3, Benchmark: "429.mcf", Mode: exp.Quick, Seed: 5}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	prof, ok := workload.ByName(job.Benchmark)
	if !ok {
		t.Fatal("missing benchmark")
	}
	key := job.Key()

	entry := func(ungated bool) []byte {
		t.Helper()
		spec := job.Spec()
		spec.Ungated = ungated
		r := exp.RunOne(spec, prof, job.Mode, job.Seed)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		dir := t.TempDir()
		NewCache(4, dir).Put(key, ResultOf(r))
		b, err := os.ReadFile(filepath.Join(dir, key+".json"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	gated, ungated := entry(false), entry(true)
	if !bytes.Equal(gated, ungated) {
		t.Errorf("cache entries for key %s differ between gated (%d bytes) and ungated (%d bytes) runs",
			key, len(gated), len(ungated))
	}
}
