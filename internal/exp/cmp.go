package exp

// Multi-programmed CMP experiments: RunMixCtx is the mix counterpart of
// RunOneCtx — N cores, one benchmark each, private first levels over a
// shared LLC — reporting per-core IPC, aggregate throughput, and (via
// WeightedSpeedup) the standard multi-programmed metric against
// single-core baselines.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/hier"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MixSpec names one CMP configuration: a hierarchy kind applied to every
// core's private side, and one benchmark per core.
type MixSpec struct {
	Kind       hier.Kind
	Levels     int      // L-NUCA levels where applicable
	Benchmarks []string // one per core

	// Ungated / ShuffleRegistration mirror Spec's fields: result-neutral
	// kernel knobs the equivalence tests cross-product over.
	Ungated             bool
	ShuffleRegistration uint64
}

// Label renders the configuration name ("4x LN3-144KB").
func (m MixSpec) Label() string {
	return fmt.Sprintf("%dx %s", len(m.Benchmarks), Spec{Kind: m.Kind, Levels: m.Levels}.Label())
}

// CoreResult is one core's measured share of a mix run.
type CoreResult struct {
	Benchmark string  `json:"benchmark"`
	IPC       float64 `json:"ipc"`
	Committed uint64  `json:"committed"` // measured-window instructions
}

// MixResult is one multi-programmed measurement.
type MixResult struct {
	Spec    MixSpec
	Cycles  uint64 // measured-window length (shared clock)
	PerCore []CoreResult
	// Throughput is the aggregate instruction rate: the sum of per-core
	// IPCs over the shared measured window.
	Throughput float64
	Stats      *stats.Set
	// Phases is the run's wall-time and kernel-activity breakdown
	// (see Result.Phases).
	Phases *Phases
	Err    error
}

// RunMix is RunMixCtx without cancellation.
func RunMix(spec MixSpec, mode Mode, seed uint64) MixResult {
	return RunMixCtx(context.Background(), spec, mode, seed, nil)
}

// RunMixCtx executes one multi-programmed measurement: build the CMP,
// functionally prewarm every core's levels, advance until every core
// clears the warmup budget, then measure until every core clears the
// total budget. Cores that finish early keep running — they must keep
// contending for the shared LLC while slower cores measure, the standard
// multi-programmed methodology. The context is polled between chunks;
// progress (when non-nil) receives (committed, total) instruction counts
// summed over cores.
//
//lnuca:allow(determinism) Phases wall-time telemetry; stripped at Cache.Put so cached results stay byte-identical
func RunMixCtx(ctx context.Context, spec MixSpec, mode Mode, seed uint64, progress func(done, total uint64)) MixResult {
	res := MixResult{Spec: spec, Phases: &Phases{}}
	profs, err := profilesFor(spec.Benchmarks)
	if err != nil {
		res.Err = err
		return res
	}
	buildStart := time.Now()
	sys, err := hier.BuildCMP(spec.Kind, profs, hier.CMPOptions{
		LNUCALevels:         spec.Levels,
		Seed:                seed,
		ShuffleRegistration: spec.ShuffleRegistration,
		Ungated:             spec.Ungated,
	})
	res.Phases.BuildSeconds = time.Since(buildStart).Seconds()
	if err != nil {
		res.Err = err
		return res
	}
	kernelStart := sys.Kernel.Stats()
	warmupStart := time.Now()
	sys.Prewarm()

	n := uint64(len(profs))
	total := mode.Warmup + mode.Measure
	report := func() {
		if progress != nil {
			var done uint64
			for _, c := range sys.Cores {
				got := c.Committed
				if got > total {
					got = total
				}
				done += got
			}
			progress(done, n*total)
		}
	}
	// A stalled machine must fail loudly, not spin: with the slowest
	// catalog profiles under full contention IPC stays above ~1/50, so
	// this cap is two orders of magnitude of headroom.
	cycleCap := 1000*total + 1_000_000

	// advance runs chunks until every core commits at least target,
	// clamping near the boundary like RunOneCtx does.
	const chunk = 2048
	advance := func(target uint64) error {
		for sys.MinCommitted() < target {
			if err := ctx.Err(); err != nil {
				return err
			}
			if sys.Kernel.Cycle() > cycleCap {
				return fmt.Errorf("exp: mix %s stalled: min committed %d/%d after %d cycles",
					spec.Label(), sys.MinCommitted(), target, sys.Kernel.Cycle())
			}
			sys.Run(clampChunk(chunk, target-sys.MinCommitted(), sys.Cores[0].MaxCommitPerCycle()))
			report()
		}
		return nil
	}

	if err := advance(mode.Warmup); err != nil {
		res.Err = err
		return res
	}
	startStats := sys.Collect()
	startCycles := sys.Kernel.Cycle()
	res.Phases.WarmupSeconds = time.Since(warmupStart).Seconds()
	measureStart := time.Now()
	if err := advance(total); err != nil {
		res.Err = err
		return res
	}
	endStats := sys.Collect()

	res.Stats = stats.Delta(endStats, startStats)
	res.Cycles = sys.Kernel.Cycle() - startCycles
	res.PerCore = make([]CoreResult, len(profs))
	var committedAll uint64
	for i := range profs {
		committed := res.Stats.Counter(fmt.Sprintf("c%d.core.committed", i))
		committedAll += committed
		cr := CoreResult{Benchmark: spec.Benchmarks[i], Committed: committed}
		if res.Cycles > 0 {
			cr.IPC = float64(committed) / float64(res.Cycles)
		}
		res.PerCore[i] = cr
		res.Throughput += cr.IPC
	}
	res.Phases.fillMeasure(committedAll, time.Since(measureStart))
	res.Phases.fillKernel(sys.Kernel.Stats().Delta(kernelStart))
	return res
}

func profilesFor(names []string) ([]workload.Profile, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("exp: mix names no benchmarks")
	}
	out := make([]workload.Profile, len(names))
	for i, n := range names {
		p, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("exp: unknown benchmark %q", n)
		}
		out[i] = p
	}
	return out, nil
}

// Baselines measures the single-core IPC of every distinct benchmark in
// benchmarks under the given spec, mode and seed: the denominators of
// WeightedSpeedup. The orchestrator resolves these through its result
// cache instead; this helper serves cache-less callers (CLI, examples).
func Baselines(ctx context.Context, spec Spec, benchmarks []string, mode Mode, seed uint64) (map[string]float64, error) {
	out := make(map[string]float64, len(benchmarks))
	for _, b := range benchmarks {
		if _, done := out[b]; done {
			continue
		}
		p, ok := workload.ByName(b)
		if !ok {
			return nil, fmt.Errorf("exp: unknown benchmark %q", b)
		}
		r := RunOneCtx(ctx, spec, p, mode, seed, nil)
		if r.Err != nil {
			return nil, fmt.Errorf("exp: baseline %s: %w", b, r.Err)
		}
		out[b] = r.IPC
	}
	return out, nil
}

// WeightedSpeedup is the Snavely-Tullsen multi-programmed metric:
// sum over cores of IPC_shared / IPC_alone. N equals perfect scaling;
// below N measures what contention for the shared LLC and the memory
// channel cost. baseline maps benchmark name to its single-core IPC
// under the same hierarchy, mode and seed.
func WeightedSpeedup(perCore []CoreResult, baseline map[string]float64) (float64, error) {
	var ws float64
	for _, c := range perCore {
		base, ok := baseline[c.Benchmark]
		if !ok || base <= 0 {
			return 0, fmt.Errorf("exp: no single-core baseline IPC for %q", c.Benchmark)
		}
		ws += c.IPC / base
	}
	return ws, nil
}

// MixTable renders a mix result as the per-core report the CLI and the
// walkthrough print.
func MixTable(r MixResult, baseline map[string]float64) *stats.Table {
	t := stats.NewTable(fmt.Sprintf("CMP mix: %s [%s]", r.Spec.Label(), strings.Join(r.Spec.Benchmarks, ", ")),
		"core", "benchmark", "IPC", "alone IPC", "slowdown")
	for i, c := range r.PerCore {
		alone := baseline[c.Benchmark]
		slow := "-"
		aloneS := "-"
		if alone > 0 {
			aloneS = fmt.Sprintf("%.3f", alone)
			slow = fmt.Sprintf("%.3f", c.IPC/alone)
		}
		t.AddRow(fmt.Sprintf("c%d", i), c.Benchmark, fmt.Sprintf("%.3f", c.IPC), aloneS, slow)
	}
	return t
}
