// Package exp is the experiment harness: it runs benchmark x configuration
// matrices and regenerates every table and figure of the paper's
// evaluation (Tables II and III, Figures 4 and 5), in the same units the
// paper reports.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cpu"
	"repro/internal/hier"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Mode scales simulation length. The paper simulates 100M instructions
// after 200M of warmup per benchmark; scaled-down windows preserve the
// shape on the synthetic workloads.
type Mode struct {
	Name    string `json:"name"`
	Warmup  uint64 `json:"warmup"`
	Measure uint64 `json:"measure"`
}

// Quick is the test/bench default.
var Quick = Mode{Name: "quick", Warmup: 4_000, Measure: 20_000}

// Full is the CLI default for reproducing the figures.
var Full = Mode{Name: "full", Warmup: 40_000, Measure: 200_000}

// Spec names one simulation configuration.
type Spec struct {
	Kind   hier.Kind
	Levels int // L-NUCA levels where applicable

	// Ungated forces plain lockstep stepping (no quiescence
	// fast-forward) and ShuffleRegistration permutes kernel registration
	// order. Neither changes results — the gating-equivalence tests pin
	// bit-identical statistics across the whole cross-product — so
	// neither is part of a job's content identity.
	Ungated             bool
	ShuffleRegistration uint64
}

// Label renders the configuration name used in the paper.
func (s Spec) Label() string {
	switch s.Kind {
	case hier.LNUCAL3:
		return fmt.Sprintf("LN%d-%dKB", s.Levels, lnTotalKB(s.Levels))
	case hier.LNUCADNUCA:
		return fmt.Sprintf("LN%d + DN-4x8", s.Levels)
	default:
		return s.Kind.String()
	}
}

func lnTotalKB(levels int) int {
	n := 0
	for k := 2; k <= levels; k++ {
		n += 4*(k-1) + 1
	}
	return 32 + 8*n
}

// Result is one benchmark x configuration measurement.
type Result struct {
	Spec   Spec
	Bench  workload.Profile
	IPC    float64
	Cycles uint64
	Stats  *stats.Set
	Energy power.Breakdown
	// LoadLat is the measured window's load-latency histogram
	// (dispatch-to-complete cycles of loads that went to memory).
	LoadLat *stats.Histogram
	// Phases is the run's wall-time and kernel-activity breakdown. It
	// describes this execution, not the experiment (cached replays of
	// the same job carry no Phases), so it is excluded from result
	// identity and from the result cache.
	Phases *Phases
	Err    error
}

// RunOne executes a single measurement: build, functional prewarm, timed
// warmup window, then the measured window (delta statistics).
func RunOne(spec Spec, prof workload.Profile, mode Mode, seed uint64) Result {
	return RunOneCtx(context.Background(), spec, prof, mode, seed, nil)
}

// RunOneCtx is the reusable single-run primitive behind RunOne, the table
// generators and the orchestration service. The context is polled between
// simulation chunks so a long run can be cancelled mid-flight; progress
// (when non-nil) receives (committed, total) instruction counts as the
// run advances. A cancelled run returns ctx.Err() in Result.Err.
//
//lnuca:allow(determinism) Phases wall-time telemetry; stripped at Cache.Put so cached results stay byte-identical
func RunOneCtx(ctx context.Context, spec Spec, prof workload.Profile, mode Mode, seed uint64, progress func(done, total uint64)) Result {
	res := Result{Spec: spec, Bench: prof, Phases: &Phases{}}
	buildStart := time.Now()
	sys, err := buildOne(spec, prof, mode, seed, nil)
	res.Phases.BuildSeconds = time.Since(buildStart).Seconds()
	if err != nil {
		res.Err = err
		return res
	}
	return measureOne(ctx, sys, mode, res, progress)
}

// buildOne assembles the single-core system a spec describes; stream,
// when non-nil, replaces the synthetic generator (recording, replay).
func buildOne(spec Spec, prof workload.Profile, mode Mode, seed uint64, stream cpu.Stream) (*hier.System, error) {
	return hier.Build(spec.Kind, prof, hier.Options{
		LNUCALevels:         spec.Levels,
		Seed:                seed,
		MaxInstr:            mode.Warmup + mode.Measure,
		ShuffleRegistration: spec.ShuffleRegistration,
		Ungated:             spec.Ungated,
		Stream:              stream,
	})
}

// measureOne is the single-core measurement loop shared by live,
// recording and replay runs: functional prewarm, timed warmup window,
// then the measured window (delta statistics).
//
//lnuca:allow(determinism) Phases wall-time telemetry; stripped at Cache.Put so cached results stay byte-identical
func measureOne(ctx context.Context, sys *hier.System, mode Mode, res Result, progress func(done, total uint64)) Result {
	if res.Phases == nil {
		res.Phases = &Phases{}
	}
	kernelStart := sys.Kernel.Stats()
	warmupStart := time.Now()
	total := mode.Warmup + mode.Measure
	sys.Prewarm()

	report := func() {
		if progress != nil {
			progress(sys.Core.Committed, total)
		}
	}

	// Warmup window: run until the core commits the warmup budget. The
	// final chunks are clamped to the remaining budget so the measured
	// window starts within a commit-width of the boundary — a fixed-size
	// final chunk would overshoot by up to chunk-1 committed
	// instructions and make the window start a function of the chunk
	// constant.
	const chunk = 2048
	for sys.Core.Committed < mode.Warmup && !sys.Kernel.Stopped() {
		if err := ctx.Err(); err != nil {
			res.Err = err
			return res
		}
		sys.Run(clampChunk(chunk, mode.Warmup-sys.Core.Committed, sys.Core.MaxCommitPerCycle()))
		report()
	}
	startStats := sys.Collect()
	startCycles := sys.Core.Cycles
	startLoadLat := sys.Core.LoadLatHist.Clone()
	res.Phases.WarmupSeconds = time.Since(warmupStart).Seconds()
	measureStart := time.Now()

	for !sys.Kernel.Stopped() {
		if err := ctx.Err(); err != nil {
			res.Err = err
			return res
		}
		sys.Run(chunk)
		report()
	}
	endStats := sys.Collect()
	res.Stats = stats.Delta(endStats, startStats)
	res.Cycles = sys.Core.Cycles - startCycles
	res.LoadLat = sys.Core.LoadLatHist.Delta(startLoadLat)
	committed := res.Stats.Counter("core.committed")
	if res.Cycles > 0 {
		res.IPC = float64(committed) / float64(res.Cycles)
	}
	res.Energy = sys.Energy(res.Stats, res.Cycles)
	res.Phases.fillMeasure(committed, time.Since(measureStart))
	res.Phases.fillKernel(sys.Kernel.Stats().Delta(kernelStart))
	return res
}

// clampChunk sizes a simulation chunk (in cycles) so that a core with
// remaining committed-instruction budget rem cannot overshoot a window
// boundary by more than commitWidth-1 instructions: a core retires at
// most commitWidth instructions per cycle, so rem/commitWidth cycles can
// never exceed the budget, and the 1-cycle floor keeps progress.
func clampChunk(chunk, rem uint64, commitWidth int) uint64 {
	if commitWidth < 1 {
		commitWidth = 1
	}
	bound := rem / uint64(commitWidth)
	if bound < 1 {
		bound = 1
	}
	if bound < chunk {
		return bound
	}
	return chunk
}

// Matrix runs every benchmark under every spec, in parallel across
// CPU cores; each run is internally deterministic given the seed.
func Matrix(specs []Spec, benches []workload.Profile, mode Mode, seed uint64) []Result {
	type job struct{ si, bi int }
	jobs := make(chan job)
	out := make([]Result, len(specs)*len(benches))
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs)*len(benches) {
		workers = len(specs) * len(benches)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out[j.si*len(benches)+j.bi] = RunOne(specs[j.si], benches[j.bi], mode, seed)
			}
		}()
	}
	for si := range specs {
		for bi := range benches {
			jobs <- job{si, bi}
		}
	}
	close(jobs)
	wg.Wait()
	return out
}

// byClass splits results for one spec into INT and FP IPC lists.
func byClass(results []Result, spec Spec) (intIPC, fpIPC []float64) {
	for _, r := range results {
		if r.Spec != spec || r.Err != nil {
			continue
		}
		if r.Bench.Class == workload.Int {
			intIPC = append(intIPC, r.IPC)
		} else {
			fpIPC = append(fpIPC, r.IPC)
		}
	}
	return
}

// HarmonicIPC returns the per-class harmonic mean IPC for a spec, the
// metric of Figures 4(a) and 5(a).
func HarmonicIPC(results []Result, spec Spec) (intHM, fpHM float64) {
	i, f := byClass(results, spec)
	return stats.HarmonicMean(i), stats.HarmonicMean(f)
}

// SumEnergy accumulates the suite-wide energy breakdown for a spec
// (the paper averages energies over all benchmarks; summing before
// normalizing is the same up to the constant factor).
func SumEnergy(results []Result, spec Spec) power.Breakdown {
	var total power.Breakdown
	for _, r := range results {
		if r.Spec != spec || r.Err != nil {
			continue
		}
		for b := power.Bucket(0); b < 4; b++ {
			total.Add(b, r.Energy.Get(b))
		}
	}
	return total
}

// SumCounter totals a counter over one spec's results, split by class.
func SumCounter(results []Result, spec Spec, key string) (intSum, fpSum uint64) {
	for _, r := range results {
		if r.Spec != spec || r.Err != nil {
			continue
		}
		if r.Bench.Class == workload.Int {
			intSum += r.Stats.Counter(key)
		} else {
			fpSum += r.Stats.Counter(key)
		}
	}
	return
}

// FirstError returns the first failed run, if any.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s / %s: %w", r.Spec.Label(), r.Bench.Name, r.Err)
		}
	}
	return nil
}
