package exp

// Trace-driven experiments: RecordOneCtx captures the dynamic op stream
// of an otherwise-ordinary RunOneCtx measurement, and ReplayOneCtx
// re-runs a recorded stream against any single-core hierarchy. Recording
// is a transparent wrapper (the live result is bit-identical to an
// unrecorded run), and replaying on the recording hierarchy reproduces
// the live run's statistics exactly — the determinism contract the
// trace-subsystem tests pin for all four Fig. 1 organizations.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/trace"
	"repro/internal/workload"
)

// RecordOneCtx runs one measurement exactly like RunOneCtx while
// capturing the op stream the core consumed into a replayable trace.
// After the live run it drains trace.ReplaySlack extra ops from the
// generator, so the trace also replays to completion on hierarchies
// whose cores run further ahead than the recording one did. On error the
// trace is nil.
//
//lnuca:allow(determinism) Phases wall-time telemetry; stripped at Cache.Put so cached results stay byte-identical
func RecordOneCtx(ctx context.Context, spec Spec, prof workload.Profile, mode Mode, seed uint64, progress func(done, total uint64)) (Result, *trace.Trace) {
	res := Result{Spec: spec, Bench: prof}
	gen, err := workload.NewGenerator(prof, seed)
	if err != nil {
		res.Err = err
		return res, nil
	}
	rec := trace.NewRecorder(gen)
	res.Phases = &Phases{}
	buildStart := time.Now()
	sys, err := buildOne(spec, prof, mode, seed, rec)
	res.Phases.BuildSeconds = time.Since(buildStart).Seconds()
	if err != nil {
		res.Err = err
		return res, nil
	}
	res = measureOne(ctx, sys, mode, res, progress)
	if res.Err != nil {
		return res, nil
	}
	rec.Reserve(trace.ReplaySlack)
	return res, rec.Trace(trace.Meta{
		Benchmark: prof.Name,
		Seed:      seed,
		Warmup:    mode.Warmup,
		Measure:   mode.Measure,
	})
}

// ReplayOneCtx re-runs a recorded trace against the given hierarchy
// spec. The trace pins everything else: the benchmark provenance (which
// reproduces the recording run's functional prewarm), the seed, and the
// warmup/measure windows. Replaying on the hierarchy that recorded the
// trace yields statistics bit-identical to the live run.
//
//lnuca:allow(determinism) Phases wall-time telemetry; stripped at Cache.Put so cached results stay byte-identical
func ReplayOneCtx(ctx context.Context, spec Spec, tr *trace.Trace, progress func(done, total uint64)) Result {
	hdr := tr.Header
	mode := Mode{Name: "trace", Warmup: hdr.Warmup, Measure: hdr.Measure}
	res := Result{Spec: spec}
	prof, ok := workload.ByName(hdr.Benchmark)
	if !ok {
		res.Err = fmt.Errorf("exp: trace %s records unknown benchmark %q", hdr.ID, hdr.Benchmark)
		return res
	}
	res.Bench = prof
	res.Phases = &Phases{}
	buildStart := time.Now()
	sys, err := buildOne(spec, prof, mode, hdr.Seed, trace.NewReplayer(tr))
	res.Phases.BuildSeconds = time.Since(buildStart).Seconds()
	if err != nil {
		res.Err = err
		return res
	}
	res = measureOne(ctx, sys, mode, res, progress)
	if res.Err != nil {
		return res
	}
	if total := mode.Warmup + mode.Measure; sys.Core.Committed < total {
		res.Err = fmt.Errorf("exp: trace %s exhausted after %d of %d instructions on %s — the trace is truncated or was not recorded with replay slack",
			hdr.ID, sys.Core.Committed, total, spec.Label())
	}
	return res
}
