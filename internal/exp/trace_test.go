package exp

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/hier"
	"repro/internal/stats"
	"repro/internal/trace"
)

// traceTestMode keeps the determinism cross-product fast while still
// spanning warmup and a real measured window.
var traceTestMode = Mode{Name: "trace-test", Warmup: 1_000, Measure: 6_000}

// requireSameResult asserts two measurements are bit-identical: IPC,
// cycles, every counter and scalar, the energy breakdown and the
// load-latency histogram.
func requireSameResult(t *testing.T, label string, live, replay Result) {
	t.Helper()
	if live.Err != nil || replay.Err != nil {
		t.Fatalf("%s: live err %v, replay err %v", label, live.Err, replay.Err)
	}
	if live.IPC != replay.IPC {
		t.Errorf("%s: IPC diverged: live %v, replay %v", label, live.IPC, replay.IPC)
	}
	if live.Cycles != replay.Cycles {
		t.Errorf("%s: cycles diverged: live %d, replay %d", label, live.Cycles, replay.Cycles)
	}
	if live.Stats.String() != replay.Stats.String() {
		t.Errorf("%s: statistics diverged:\nlive:\n%s\nreplay:\n%s", label, live.Stats, replay.Stats)
	}
	if live.Energy != replay.Energy {
		t.Errorf("%s: energy diverged: live %+v, replay %+v", label, live.Energy, replay.Energy)
	}
	if !reflect.DeepEqual(live.LoadLat, replay.LoadLat) {
		t.Errorf("%s: load-latency histogram diverged", label)
	}
}

// TestReplayDeterminismAllKinds is the subsystem's acceptance test:
// recording a synthetic run and replaying the trace on the same
// hierarchy yields bit-identical statistics to the live run, for every
// Fig. 1 organization.
func TestReplayDeterminismAllKinds(t *testing.T) {
	ctx := context.Background()
	prof := mustProfile(t, "403.gcc")
	for _, spec := range []Spec{
		{Kind: hier.Conventional},
		{Kind: hier.LNUCAL3, Levels: 3},
		{Kind: hier.DNUCAOnly},
		{Kind: hier.LNUCADNUCA, Levels: 3},
	} {
		spec := spec
		t.Run(spec.Label(), func(t *testing.T) {
			t.Parallel()
			live, tr := RecordOneCtx(ctx, spec, prof, traceTestMode, 9, nil)
			if live.Err != nil {
				t.Fatalf("record: %v", live.Err)
			}
			if tr.Header.Benchmark != prof.Name || tr.Header.Seed != 9 {
				t.Fatalf("trace header provenance wrong: %+v", tr.Header)
			}
			replay := ReplayOneCtx(ctx, spec, tr, nil)
			requireSameResult(t, spec.Label(), live, replay)
		})
	}
}

// TestRecordingIsTransparent: wrapping the generator in a Recorder must
// not perturb the live measurement at all.
func TestRecordingIsTransparent(t *testing.T) {
	ctx := context.Background()
	prof := mustProfile(t, "429.mcf")
	spec := Spec{Kind: hier.LNUCAL3, Levels: 3}
	plain := RunOneCtx(ctx, spec, prof, traceTestMode, 4, nil)
	recorded, tr := RecordOneCtx(ctx, spec, prof, traceTestMode, 4, nil)
	requireSameResult(t, "recorded-vs-plain", plain, recorded)
	if tr == nil || tr.Header.Ops == 0 {
		t.Fatal("no trace captured")
	}
}

// TestReplayAcrossHierarchies: one trace re-runs to completion on every
// other hierarchy (the slack margin covers cores that run further
// ahead), and a serialized round trip through the codec replays
// identically to the in-memory trace.
func TestReplayAcrossHierarchies(t *testing.T) {
	ctx := context.Background()
	prof := mustProfile(t, "482.sphinx3")
	_, tr := RecordOneCtx(ctx, Spec{Kind: hier.Conventional}, prof, traceTestMode, 2, nil)
	if tr == nil {
		t.Fatal("no trace")
	}
	data, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []Spec{
		{Kind: hier.LNUCAL3, Levels: 2},
		{Kind: hier.DNUCAOnly},
		{Kind: hier.LNUCADNUCA, Levels: 4},
	} {
		mem := ReplayOneCtx(ctx, spec, tr, nil)
		if mem.Err != nil {
			t.Fatalf("%s: replay on foreign hierarchy failed: %v", spec.Label(), mem.Err)
		}
		disk := ReplayOneCtx(ctx, spec, decoded, nil)
		requireSameResult(t, spec.Label()+" codec-round-trip", mem, disk)
	}
}

// TestResultCarriesLoadLatency: the measured window's load-latency
// histogram is populated, consistent with the completed-loads counter,
// and JSON round-trips (the shape the orchestrator serves).
func TestResultCarriesLoadLatency(t *testing.T) {
	res := RunOneCtx(context.Background(), Spec{Kind: hier.Conventional}, mustProfile(t, "403.gcc"), traceTestMode, 1, nil)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.LoadLat == nil || res.LoadLat.Count() == 0 {
		t.Fatal("no load-latency histogram in the result")
	}
	if res.LoadLat.Mean() <= 0 {
		t.Errorf("implausible mean load latency %v", res.LoadLat.Mean())
	}
	data, err := json.Marshal(res.LoadLat)
	if err != nil {
		t.Fatal(err)
	}
	var rt stats.Histogram
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&rt, res.LoadLat) {
		t.Error("load-latency histogram JSON round trip diverged")
	}
}
