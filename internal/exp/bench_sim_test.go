package exp

// Simulator-throughput benchmarks: the wall-clock trajectory CI records
// in BENCH_sim.json. The headline metric is MIPS — simulated committed
// instructions per wall-second — plus the simulated-cycle rate and, for
// the gated kernel, the fraction of cycles the quiescence fast-forward
// skipped. BenchmarkSimFig5QuickGated vs BenchmarkSimFig5QuickUngated is
// the acceptance comparison for the activity-gated kernel: same runs,
// same results (the equivalence tests pin bit-identity), different
// wall-clock.

import (
	"testing"

	"repro/internal/workload"
)

// benchSuite is the class-balanced subset the Fig. 4/5 quick benchmarks
// use (mirrors the root-package bench harness).
func benchSuite(b *testing.B) []workload.Profile {
	b.Helper()
	var out []workload.Profile
	for _, n := range []string{"403.gcc", "429.mcf", "434.zeusmp", "482.sphinx3"} {
		p, ok := workload.ByName(n)
		if !ok {
			b.Fatalf("missing benchmark %s", n)
		}
		out = append(out, p)
	}
	return out
}

// runSuite runs every spec x benchmark cell serially (serial keeps the
// gated/ungated wall-clock ratio free of scheduler noise) and returns
// committed instructions and simulated cycles.
func runSuite(b *testing.B, specs []Spec, ungated bool) (instr, cycles uint64) {
	b.Helper()
	for _, s := range specs {
		s.Ungated = ungated
		for _, prof := range benchSuite(b) {
			r := RunOne(s, prof, Quick, 1)
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			instr += r.Stats.Counter("core.committed")
			cycles += r.Cycles
		}
	}
	return instr, cycles
}

func reportRates(b *testing.B, instr, cycles uint64) {
	sec := b.Elapsed().Seconds()
	if sec <= 0 {
		return
	}
	b.ReportMetric(float64(instr)/sec/1e6, "MIPS")
	b.ReportMetric(float64(cycles)/sec/1e6, "Mcycles/s")
}

// BenchmarkSimFig5QuickGated runs the Fig. 5 quick-window suite (the
// D-NUCA configuration set) on the activity-gated kernel.
func BenchmarkSimFig5QuickGated(b *testing.B) {
	var instr, cycles uint64
	for i := 0; i < b.N; i++ {
		in, cy := runSuite(b, DNUCASpecs(), false)
		instr += in
		cycles += cy
	}
	reportRates(b, instr, cycles)
}

// BenchmarkSimFig5QuickUngated is the same suite with fast-forwarding
// disabled: the denominator of the gating speedup.
func BenchmarkSimFig5QuickUngated(b *testing.B) {
	var instr, cycles uint64
	for i := 0; i < b.N; i++ {
		in, cy := runSuite(b, DNUCASpecs(), true)
		instr += in
		cycles += cy
	}
	reportRates(b, instr, cycles)
}

// BenchmarkSimFig4Quick tracks the conventional-hierarchy suite on the
// gated kernel, the second leg of the wall-clock trajectory.
func BenchmarkSimFig4Quick(b *testing.B) {
	var instr, cycles uint64
	for i := 0; i < b.N; i++ {
		in, cy := runSuite(b, ConventionalSpecs(), false)
		instr += in
		cycles += cy
	}
	reportRates(b, instr, cycles)
}
