package exp

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/hier"
)

// resultFingerprint reduces a run to the byte string equivalence is
// asserted on: the full statistics set plus the headline numbers.
func resultFingerprint(t *testing.T, stats json.Marshaler, cycles uint64, ipc float64) string {
	t.Helper()
	b, err := json.Marshal(stats)
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	return fmt.Sprintf("cycles=%d ipc=%.17g stats=%s", cycles, ipc, b)
}

// TestGatingShuffleEquivalence runs the {gated, ungated} x {registration
// order, shuffled registration} cross-product for all four Fig. 1
// hierarchies and asserts byte-identical statistics: the quiescence
// fast-forward must not change a single counter, under any component
// registration order.
func TestGatingShuffleEquivalence(t *testing.T) {
	bench := mustProfile(t, "429.mcf") // memory-bound: maximal stall/skip coverage
	for _, kind := range []hier.Kind{hier.Conventional, hier.LNUCAL3, hier.DNUCAOnly, hier.LNUCADNUCA} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			base := RunOne(Spec{Kind: kind, Levels: 3}, bench, Quick, 7)
			if base.Err != nil {
				t.Fatal(base.Err)
			}
			want := resultFingerprint(t, base.Stats, base.Cycles, base.IPC)
			for _, ungated := range []bool{false, true} {
				for _, shuffle := range []uint64{0, 0xBADC0FFEE} {
					if !ungated && shuffle == 0 {
						continue // the baseline itself
					}
					r := RunOne(Spec{Kind: kind, Levels: 3, Ungated: ungated, ShuffleRegistration: shuffle},
						bench, Quick, 7)
					if r.Err != nil {
						t.Fatalf("ungated=%v shuffle=%#x: %v", ungated, shuffle, r.Err)
					}
					got := resultFingerprint(t, r.Stats, r.Cycles, r.IPC)
					if got != want {
						t.Errorf("ungated=%v shuffle=%#x diverged from gated in-order run:\n got %.200s...\nwant %.200s...",
							ungated, shuffle, got, want)
					}
				}
			}
		})
	}
}

// TestGatingShuffleEquivalenceCMPMix is the multi-programmed leg of the
// cross-product: a 4-core mix over the shared LLC, gated vs ungated,
// in-order vs shuffled registration, must agree bit for bit.
func TestGatingShuffleEquivalenceCMPMix(t *testing.T) {
	mix := MixSpec{
		Kind:       hier.LNUCAL3,
		Levels:     3,
		Benchmarks: []string{"403.gcc", "429.mcf", "470.lbm", "482.sphinx3"},
	}
	base := RunMix(mix, Quick, 11)
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	want := resultFingerprint(t, base.Stats, base.Cycles, base.Throughput)
	for _, ungated := range []bool{false, true} {
		for _, shuffle := range []uint64{0, 0x5EEDED} {
			if !ungated && shuffle == 0 {
				continue
			}
			m := mix
			m.Ungated = ungated
			m.ShuffleRegistration = shuffle
			r := RunMix(m, Quick, 11)
			if r.Err != nil {
				t.Fatalf("ungated=%v shuffle=%#x: %v", ungated, shuffle, r.Err)
			}
			got := resultFingerprint(t, r.Stats, r.Cycles, r.Throughput)
			if got != want {
				t.Errorf("ungated=%v shuffle=%#x diverged:\n got %.200s...\nwant %.200s...",
					ungated, shuffle, got, want)
			}
		}
	}
}
