package exp

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/hier"
	"repro/internal/workload"
)

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return p
}

func quadMix() MixSpec {
	return MixSpec{
		Kind:       hier.LNUCAL3,
		Levels:     3,
		Benchmarks: []string{"403.gcc", "429.mcf", "470.lbm", "482.sphinx3"},
	}
}

func TestRunMixProducesSaneResult(t *testing.T) {
	r := RunMix(quadMix(), Quick, 1)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.PerCore) != 4 {
		t.Fatalf("%d per-core results", len(r.PerCore))
	}
	var sum float64
	for i, c := range r.PerCore {
		if c.IPC <= 0.01 || c.IPC > 4 {
			t.Errorf("core %d (%s): IPC %v", i, c.Benchmark, c.IPC)
		}
		// Every core must cover at least its measured window (early
		// finishers keep running, so more is fine).
		if c.Committed < Quick.Measure-uint64(4) {
			t.Errorf("core %d measured only %d instructions", i, c.Committed)
		}
		sum += c.IPC
	}
	if r.Throughput != sum {
		t.Fatalf("throughput %v != IPC sum %v", r.Throughput, sum)
	}
	if r.Cycles == 0 || r.Stats == nil {
		t.Fatal("missing measurement")
	}
	// Contention statistics must be visible in the measured window.
	if r.Stats.Counter("arb.grants.c0") == 0 {
		t.Fatal("no arbiter grants recorded for core 0")
	}
}

// TestRunMixDeterministic: the acceptance bar — two identical runs give
// identical per-core stats, cycle for cycle.
func TestRunMixDeterministic(t *testing.T) {
	a := RunMix(quadMix(), Quick, 7)
	b := RunMix(quadMix(), Quick, 7)
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("cycles %d vs %d", a.Cycles, b.Cycles)
	}
	if !reflect.DeepEqual(a.PerCore, b.PerCore) {
		t.Fatalf("per-core results diverge:\n%v\n%v", a.PerCore, b.PerCore)
	}
	if a.Stats.String() != b.Stats.String() {
		t.Fatal("stats sets diverge")
	}
}

func TestRunMixCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := RunMixCtx(ctx, quadMix(), Quick, 1, nil)
	if r.Err == nil {
		t.Fatal("cancelled run reported success")
	}
}

func TestRunMixRejectsUnknownBenchmark(t *testing.T) {
	r := RunMix(MixSpec{Kind: hier.LNUCAL3, Benchmarks: []string{"nope"}}, Quick, 1)
	if r.Err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	r = RunMix(MixSpec{Kind: hier.LNUCAL3}, Quick, 1)
	if r.Err == nil {
		t.Fatal("empty mix accepted")
	}
}

func TestRunMixReportsProgress(t *testing.T) {
	var last, total uint64
	r := RunMixCtx(context.Background(), MixSpec{
		Kind:       hier.Conventional,
		Benchmarks: []string{"403.gcc", "456.hmmer"},
	}, Quick, 1, func(done, tot uint64) { last, total = done, tot })
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	wantTotal := 2 * (Quick.Warmup + Quick.Measure)
	if total != wantTotal {
		t.Fatalf("progress total %d, want %d", total, wantTotal)
	}
	if last != wantTotal {
		t.Fatalf("final progress %d, want %d", last, wantTotal)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	perCore := []CoreResult{
		{Benchmark: "a", IPC: 0.5},
		{Benchmark: "b", IPC: 1.0},
	}
	ws, err := WeightedSpeedup(perCore, map[string]float64{"a": 1.0, "b": 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if ws != 1.0 {
		t.Fatalf("WS = %v, want 1.0", ws)
	}
	if _, err := WeightedSpeedup(perCore, map[string]float64{"a": 1.0}); err == nil {
		t.Fatal("missing baseline accepted")
	}
	if _, err := WeightedSpeedup(perCore, map[string]float64{"a": 1.0, "b": 0}); err == nil {
		t.Fatal("zero baseline accepted")
	}
}

// TestWarmupBoundaryClamped: the regression test for the warmup
// overshoot — the measured window must cover the nominal budget to
// within a commit-width, where the unclamped loop lost up to
// chunk*width-1 instructions to the warmup side.
func TestWarmupBoundaryClamped(t *testing.T) {
	for _, bench := range []string{"403.gcc", "470.lbm"} {
		r := RunOne(Spec{Kind: hier.Conventional}, mustProfile(t, bench), Quick, 1)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		got := r.Stats.Counter("core.committed")
		if got > Quick.Measure {
			t.Errorf("%s: measured %d > budget %d", bench, got, Quick.Measure)
		}
		if got < Quick.Measure-4 {
			t.Errorf("%s: measured %d, warmup overshoot ate %d instructions of the %d budget",
				bench, got, Quick.Measure-got, Quick.Measure)
		}
	}
}

func TestClampChunk(t *testing.T) {
	cases := []struct {
		chunk, rem uint64
		width      int
		want       uint64
	}{
		{2048, 100_000, 4, 2048}, // far from the boundary: full chunk
		{2048, 8192, 4, 2048},    // exactly chunk*width away
		{2048, 8191, 4, 2047},
		{2048, 40, 4, 10},
		{2048, 3, 4, 1}, // floor: always make progress
		{2048, 0, 4, 1},
		{2048, 100, 0, 100}, // degenerate width treated as 1
	}
	for _, c := range cases {
		if got := clampChunk(c.chunk, c.rem, c.width); got != c.want {
			t.Errorf("clampChunk(%d, %d, %d) = %d, want %d", c.chunk, c.rem, c.width, got, c.want)
		}
	}
}

func BenchmarkCMPMix2(b *testing.B) {
	spec := MixSpec{Kind: hier.LNUCAL3, Levels: 3, Benchmarks: []string{"403.gcc", "470.lbm"}}
	for i := 0; i < b.N; i++ {
		if r := RunMix(spec, Quick, 1); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

func BenchmarkCMPMix4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := RunMix(quadMix(), Quick, 1); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}
