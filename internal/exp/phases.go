package exp

import (
	"time"

	"repro/internal/sim"
)

// Phases is the per-run timing and kernel-activity breakdown — wall
// time per phase plus the activity-gating counters over the whole
// simulated window. It answers "why was this run fast or slow": a high
// SkipRatio means quiescence fast-forwarding carried the run; a MIPS
// drop with a flat skip ratio points at the active-set cost.
//
// Phases describe the execution, not the experiment: two runs of the
// same job produce identical Results but different Phases, so the
// result cache strips them before storing (they never enter the
// content-addressed bytes) and they are reported only for the run that
// actually simulated.
type Phases struct {
	// BuildSeconds is the wall time spent assembling the system.
	BuildSeconds float64 `json:"build_seconds"`
	// WarmupSeconds covers the functional prewarm plus the timed warmup
	// window; MeasureSeconds covers the measured window.
	WarmupSeconds  float64 `json:"warmup_seconds"`
	MeasureSeconds float64 `json:"measure_seconds"`
	// Instructions is the committed-instruction count of the measured
	// window (summed over cores in a mix); MIPS is Instructions over
	// MeasureSeconds, in millions — the simulator's throughput.
	Instructions uint64  `json:"instructions,omitempty"`
	MIPS         float64 `json:"mips,omitempty"`

	// Kernel activity over warmup+measure (simulated-time accounting):
	// SteppedCycles were executed, FastForwardedCycles were bulk-skipped
	// in FastForwards jumps, EvalsSkipped single components sat out
	// partially-active cycles.
	SteppedCycles       uint64 `json:"stepped_cycles,omitempty"`
	FastForwardedCycles uint64 `json:"fastforwarded_cycles,omitempty"`
	FastForwards        uint64 `json:"fastforwards,omitempty"`
	EvalsSkipped        uint64 `json:"evals_skipped,omitempty"`
	// SkipRatio is FastForwardedCycles over total simulated cycles;
	// AvgActiveComponents is mean Evals per executed cycle.
	SkipRatio           float64 `json:"skip_ratio,omitempty"`
	AvgActiveComponents float64 `json:"avg_active_components,omitempty"`
}

// fillKernel copies one KernelStats delta into the breakdown.
func (p *Phases) fillKernel(d sim.KernelStats) {
	p.SteppedCycles = d.Stepped
	p.FastForwardedCycles = d.SkippedCycles
	p.FastForwards = d.FastForwards
	p.EvalsSkipped = d.EvalsSkipped
	p.SkipRatio = d.SkipRatio()
	p.AvgActiveComponents = d.AvgActive()
}

// fillMeasure records the measured window's throughput.
func (p *Phases) fillMeasure(instructions uint64, elapsed time.Duration) {
	p.Instructions = instructions
	p.MeasureSeconds = elapsed.Seconds()
	if p.MeasureSeconds > 0 {
		p.MIPS = float64(instructions) / p.MeasureSeconds / 1e6
	}
}
