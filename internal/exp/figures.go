package exp

import (
	"fmt"
	"sort"

	"repro/internal/area"
	"repro/internal/hier"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ConventionalSpecs returns the Fig. 4 configuration set: the L2-256KB
// baseline and L-NUCAs of 2..4 levels backed by the same L3.
func ConventionalSpecs() []Spec {
	return []Spec{
		{Kind: hier.Conventional},
		{Kind: hier.LNUCAL3, Levels: 2},
		{Kind: hier.LNUCAL3, Levels: 3},
		{Kind: hier.LNUCAL3, Levels: 4},
	}
}

// DNUCASpecs returns the Fig. 5 configuration set: the DN-4x8 baseline
// and L-NUCAs of 2..4 levels in front of it.
func DNUCASpecs() []Spec {
	return []Spec{
		{Kind: hier.DNUCAOnly},
		{Kind: hier.LNUCADNUCA, Levels: 2},
		{Kind: hier.LNUCADNUCA, Levels: 3},
		{Kind: hier.LNUCADNUCA, Levels: 4},
	}
}

// FigIPC renders a Fig. 4(a)/5(a)-style table: harmonic-mean IPC per
// class with gains over the first (baseline) spec.
func FigIPC(title string, specs []Spec, results []Result) *stats.Table {
	t := stats.NewTable(title, "config", "IPC int", "IPC fp", "int gain %", "fp gain %")
	baseInt, baseFP := HarmonicIPC(results, specs[0])
	for _, s := range specs {
		i, f := HarmonicIPC(results, s)
		t.AddRowf(s.Label(), i, f,
			stats.SpeedupPercent(i, baseInt), stats.SpeedupPercent(f, baseFP))
	}
	return t
}

// FigEnergy renders a Fig. 4(b)/5(b)-style table: the four stacked
// buckets normalized to the baseline total, plus overall savings.
func FigEnergy(title string, specs []Spec, results []Result) *stats.Table {
	t := stats.NewTable(title, "config", "dyn.", "sta. L1-RT", "sta. L2-RESTT", "sta. LLC", "total", "savings %")
	base := SumEnergy(results, specs[0])
	for _, s := range specs {
		e := SumEnergy(results, s)
		n := e.NormalizedTo(base)
		t.AddRowf(s.Label(), n[power.Dynamic], n[power.StaticL1RT],
			n[power.StaticMid], n[power.StaticLLC],
			n[0]+n[1]+n[2]+n[3], e.SavingsPercentVs(base))
	}
	return t
}

// Table2 renders the area comparison (no simulation needed).
func Table2() *stats.Table {
	t := stats.NewTable("Table II: conventional and L-NUCA areas",
		"config", "L1+L2 / L-NUCA area (mm2)", "network area (mm2)", "network %")
	t.AddRowf("L2-256KB", area.Conventional(), 0.0, 0.0)
	for levels := 2; levels <= 4; levels++ {
		r := area.LNUCA(levels)
		t.AddRowf(fmt.Sprintf("LN%d-%dKB", levels, lnTotalKB(levels)),
			r.TotalMM2, r.NetworkMM2, r.NetworkPct)
	}
	return t
}

// Table3Row carries the Table III quantities for one L-NUCA config.
type Table3Row struct {
	Label       string
	Levels      int
	PctByLevel  map[int][2]float64 // level -> [int%, fp%] of baseline L2 read hits
	AllLevels   [2]float64
	AvgMinIntFP [2]float64 // avg/min transport latency ratio per class
}

// Table3 computes the read-hit distribution relative to the baseline's L2
// read hits, and the transport latency ratios. It needs results covering
// the Conventional spec and the three LNUCAL3 specs over the same
// benchmarks.
func Table3(results []Result) []Table3Row {
	// Index results by (spec, bench).
	conv := map[string]Result{}
	for _, r := range results {
		if r.Spec.Kind == hier.Conventional && r.Err == nil {
			conv[r.Bench.Name] = r
		}
	}
	var rows []Table3Row
	for _, levels := range []int{2, 3, 4} {
		spec := Spec{Kind: hier.LNUCAL3, Levels: levels}
		row := Table3Row{
			Label:      fmt.Sprintf("LN%d-%dKB", levels, lnTotalKB(levels)),
			Levels:     levels,
			PctByLevel: map[int][2]float64{},
		}
		var sums, ratios [2][]float64 // per class accumulators
		perLevel := map[int]*[2][]float64{}
		for _, r := range results {
			if r.Spec != spec || r.Err != nil {
				continue
			}
			base, ok := conv[r.Bench.Name]
			if !ok {
				continue
			}
			l2Hits := float64(base.Stats.Counter("l2.read_hits"))
			if l2Hits == 0 {
				continue
			}
			cls := 0
			if r.Bench.Class == workload.FP {
				cls = 1
			}
			all := 0.0
			for lvl := 2; lvl <= levels; lvl++ {
				hits := float64(r.Stats.Counter(fmt.Sprintf("ln.read_hits_le%d", lvl)))
				pct := 100 * hits / l2Hits
				all += pct
				if perLevel[lvl] == nil {
					perLevel[lvl] = &[2][]float64{}
				}
				perLevel[lvl][cls] = append(perLevel[lvl][cls], pct)
			}
			sums[cls] = append(sums[cls], all)
			ratios[cls] = append(ratios[cls], r.Stats.Scalar("ln.transport_ratio"))
		}
		lvls := make([]int, 0, len(perLevel))
		for lvl := range perLevel {
			lvls = append(lvls, lvl)
		}
		sort.Ints(lvls)
		for _, lvl := range lvls {
			acc := perLevel[lvl]
			row.PctByLevel[lvl] = [2]float64{
				stats.ArithmeticMean(acc[0]), stats.ArithmeticMean(acc[1]),
			}
		}
		row.AllLevels = [2]float64{stats.ArithmeticMean(sums[0]), stats.ArithmeticMean(sums[1])}
		row.AvgMinIntFP = [2]float64{stats.ArithmeticMean(ratios[0]), stats.ArithmeticMean(ratios[1])}
		rows = append(rows, row)
	}
	return rows
}

// Table3Render formats Table3 rows in the paper's layout.
func Table3Render(rows []Table3Row) *stats.Table {
	t := stats.NewTable("Table III: read hits per level relative to baseline L2 read hits (%), and transport latency ratio",
		"config", "Le2 int", "Le2 fp", "Le3 int", "Le3 fp", "Le4 int", "Le4 fp",
		"all int", "all fp", "avg/min int", "avg/min fp")
	for _, r := range rows {
		cell := func(lvl, cls int) interface{} {
			v, ok := r.PctByLevel[lvl]
			if !ok {
				return "—"
			}
			return v[cls]
		}
		t.AddRowf(r.Label,
			cell(2, 0), cell(2, 1), cell(3, 0), cell(3, 1), cell(4, 0), cell(4, 1),
			r.AllLevels[0], r.AllLevels[1], r.AvgMinIntFP[0], r.AvgMinIntFP[1])
	}
	return t
}

// Table1 renders the architectural parameters actually instantiated by
// the simulator (Table I).
func Table1() *stats.Table {
	t := stats.NewTable("Table I: architectural and network parameters (as instantiated)",
		"parameter", "value")
	rows := [][2]string{
		{"Fetch/Decode width", "4, up to 2 taken branches"},
		{"Issue width", "4 (INT or MEM) + 4 FP"},
		{"Commit width", "4"},
		{"ROB / LSQ", "128 / 64"},
		{"Store buffer", "48"},
		{"INT/FP/MEM issue windows", "32 / 24 / 16"},
		{"Branch predictor", "bimodal + gshare, 16-bit history"},
		{"Branch mispredict delay", "8"},
		{"MSHR L1/L2/L3", "16 / 16 / 8 (4 secondary)"},
		{"TLB miss latency", "30"},
		{"L1 / r-tile", "32KB 4-way 32B, 2-cycle, write-through, 2 ports, 21.2 pJ, 12.8 mW"},
		{"L2", "256KB 8-way 64B, 4-cycle completion 2-cycle initiation, copy-back, 47.2 pJ, 66.9 mW"},
		{"L-NUCA tile", "8KB 2-way 32B, 1-cycle, copy-back, 14 pJ, 2.2 mW"},
		{"L3", "8MB 16-way 128B, 20-cycle completion 15-cycle initiation, LOP, 20.9 pJ, 600 mW"},
		{"D-NUCA", "8MB, 8 bank sets x 4 rows, 256KB 2-way 128B banks, 3-cycle, 131.2 pJ, 33.5 mW/bank"},
		{"Main memory", "200-cycle first chunk, 4-cycle inter-chunk, 16B wires"},
		{"L-NUCA links", "message-wide, 2-entry buffers, On/Off flow control"},
		{"D-NUCA network", "wormhole, 4 VCs, 4-flit buffers, 32B flits, 1-5 flits/message"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return t
}
