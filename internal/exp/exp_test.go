package exp

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/hier"
	"repro/internal/power"
	"repro/internal/workload"
)

// convMatrixOnce memoizes the conventional-spec matrix that both
// TestFig4Shape and TestTable3Shape consume: the runs are identical
// (same specs, benches, mode, seed — the same content keys the
// orchestrator's result cache would coalesce), so simulating them twice
// only doubled the suite's wall time.
var (
	convMatrixOnce    sync.Once
	convMatrixResults []Result
)

func sharedConvMatrix() []Result {
	convMatrixOnce.Do(func() {
		convMatrixResults = Matrix(ConventionalSpecs(), testBenches(), Quick, 1)
	})
	return convMatrixResults
}

// testBenches picks a small, class-balanced subset so the harness tests
// stay fast; the full suite runs in the benchmarks and the CLI.
func testBenches() []workload.Profile {
	names := []string{"403.gcc", "429.mcf", "462.libquantum",
		"434.zeusmp", "453.povray", "482.sphinx3"}
	var out []workload.Profile
	for _, n := range names {
		p, ok := workload.ByName(n)
		if !ok {
			panic("missing profile " + n)
		}
		out = append(out, p)
	}
	return out
}

func TestRunOneProducesSaneResult(t *testing.T) {
	prof, _ := workload.ByName("403.gcc")
	r := RunOne(Spec{Kind: hier.Conventional}, prof, Quick, 1)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.IPC <= 0.05 || r.IPC > 4 {
		t.Fatalf("IPC = %v", r.IPC)
	}
	if r.Cycles == 0 || r.Stats == nil {
		t.Fatal("missing measurement")
	}
	// The warmup boundary is chunk-granular, so the measured window can
	// fall slightly short of the nominal budget.
	if got := r.Stats.Counter("core.committed"); got < Quick.Measure*9/10 {
		t.Fatalf("measured %d instructions, want ~%d", got, Quick.Measure)
	}
	if r.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
}

func TestMatrixCoversAllCells(t *testing.T) {
	specs := []Spec{{Kind: hier.Conventional}, {Kind: hier.LNUCAL3, Levels: 2}}
	benches := testBenches()[:2]
	results := Matrix(specs, benches, Quick, 1)
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		seen[r.Spec.Label()+"/"+r.Bench.Name] = true
	}
	if len(seen) != 4 {
		t.Fatalf("duplicate or missing cells: %v", seen)
	}
}

func TestSpecLabels(t *testing.T) {
	cases := map[Spec]string{
		{Kind: hier.Conventional}:          "L2-256KB",
		{Kind: hier.LNUCAL3, Levels: 2}:    "LN2-72KB",
		{Kind: hier.LNUCAL3, Levels: 3}:    "LN3-144KB",
		{Kind: hier.LNUCAL3, Levels: 4}:    "LN4-248KB",
		{Kind: hier.DNUCAOnly}:             "DN-4x8",
		{Kind: hier.LNUCADNUCA, Levels: 2}: "LN2 + DN-4x8",
	}
	for s, want := range cases {
		if got := s.Label(); got != want {
			t.Errorf("Label(%+v) = %q, want %q", s, got, want)
		}
	}
}

// TestFig4Shape is the core reproduction check at test scale: L-NUCA must
// beat the conventional baseline in harmonic-mean IPC for both classes,
// and save total energy.
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	specs := ConventionalSpecs()
	results := sharedConvMatrix()
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	baseInt, baseFP := HarmonicIPC(results, specs[0])
	for _, s := range specs[1:] {
		i, f := HarmonicIPC(results, s)
		if i <= baseInt {
			t.Errorf("%s: INT HM IPC %.3f not above baseline %.3f", s.Label(), i, baseInt)
		}
		if f <= baseFP {
			t.Errorf("%s: FP HM IPC %.3f not above baseline %.3f", s.Label(), f, baseFP)
		}
	}
	// Energy: every L-NUCA config should save versus the baseline.
	base := SumEnergy(results, specs[0])
	for _, s := range specs[1:] {
		e := SumEnergy(results, s)
		if e.SavingsPercentVs(base) <= 0 {
			t.Errorf("%s: no energy saving (%.1f%%)", s.Label(), e.SavingsPercentVs(base))
		}
	}
	// Static LLC dominates every breakdown, as in Fig. 4(b).
	if base.Get(power.StaticLLC) < base.Get(power.Dynamic) {
		t.Error("baseline static LLC below dynamic; energy model shape wrong")
	}
	// Render the tables to exercise formatting.
	ipcTable := FigIPC("Fig 4(a)", specs, results)
	if ipcTable.NumRows() != len(specs) {
		t.Error("Fig 4(a) table wrong size")
	}
	out := FigEnergy("Fig 4(b)", specs, results).String()
	if !strings.Contains(out, "L2-256KB") {
		t.Error("Fig 4(b) missing baseline row")
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	results := sharedConvMatrix()
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	rows := Table3(results)
	if len(rows) != 3 {
		t.Fatalf("Table III rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		// Level 2 must capture a substantial share of former L2 hits and
		// each level's contribution must be positive.
		le2 := r.PctByLevel[2]
		if le2[0] <= 5 || le2[1] <= 5 {
			t.Errorf("%s: Le2 captures int %.1f%% fp %.1f%% of L2 hits; too low",
				r.Label, le2[0], le2[1])
		}
		// Transport ratio very close to 1 (paper: < 1.014).
		for cls, ratio := range r.AvgMinIntFP {
			if ratio < 1.0 || ratio > 1.1 {
				t.Errorf("%s class %d: transport ratio %.4f outside [1, 1.1]",
					r.Label, cls, ratio)
			}
		}
		// Outer levels contribute less than Le2 (temporal ordering).
		if r.Levels >= 3 {
			le3 := r.PctByLevel[3]
			if le3[0] >= le2[0] {
				t.Errorf("%s: Le3 int share %.1f%% >= Le2 %.1f%%", r.Label, le3[0], le2[0])
			}
		}
	}
	// All-levels coverage grows with levels.
	if rows[2].AllLevels[0] <= rows[0].AllLevels[0] {
		t.Errorf("all-levels int share should grow: LN2 %.1f%% vs LN4 %.1f%%",
			rows[0].AllLevels[0], rows[2].AllLevels[0])
	}
	if Table3Render(rows).NumRows() != 3 {
		t.Error("Table III rendering wrong")
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	specs := DNUCASpecs()
	// Smaller subset and a halved window: the D-NUCA runs are by far the
	// slowest in the suite, and the IPC ordering the test asserts is
	// already stable at this scale.
	benches := testBenches()[:4]
	fig5Mode := Mode{Name: "fig5-test", Warmup: Quick.Warmup / 2, Measure: Quick.Measure / 2}
	results := Matrix(specs, benches, fig5Mode, 1)
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	baseInt, baseFP := HarmonicIPC(results, specs[0])
	for _, s := range specs[1:] {
		i, f := HarmonicIPC(results, s)
		if i <= baseInt || f <= baseFP {
			t.Errorf("%s: IPC (%.3f, %.3f) not above DN-4x8 (%.3f, %.3f)",
				s.Label(), i, f, baseInt, baseFP)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	tbl := Table2()
	out := tbl.String()
	for _, want := range []string{"L2-256KB", "LN2-72KB", "LN3-144KB", "LN4-248KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"ROB / LSQ", "128 / 64", "L-NUCA tile", "200-cycle first chunk"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}
