package exp

import (
	"testing"

	"repro/internal/hier"
	"repro/internal/workload"
)

// TestPhasesOnGatedFig5Run pins the observability acceptance criterion:
// a gated run of the Fig. 5 configuration (L-NUCA over the D-NUCA)
// reports a positive skip ratio and a positive MIPS through its Phases
// breakdown, with the simulated-time accounting closed (stepped +
// fast-forwarded cycles cover everything the kernel clocked).
func TestPhasesOnGatedFig5Run(t *testing.T) {
	prof, ok := workload.ByName("429.mcf")
	if !ok {
		t.Fatal("missing 429.mcf")
	}
	res := RunOne(Spec{Kind: hier.LNUCADNUCA, Levels: 3}, prof, Quick, 1)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	ph := res.Phases
	if ph == nil {
		t.Fatal("gated run reported no Phases")
	}
	if ph.MIPS <= 0 || ph.Instructions == 0 {
		t.Errorf("MIPS = %v over %d instructions, want positive", ph.MIPS, ph.Instructions)
	}
	if ph.SkipRatio <= 0 || ph.SkipRatio >= 1 {
		t.Errorf("skip ratio = %v, want in (0, 1) for a gated memory-bound run", ph.SkipRatio)
	}
	if ph.FastForwardedCycles == 0 || ph.FastForwards == 0 {
		t.Errorf("no fast-forwarding recorded: cycles=%d jumps=%d", ph.FastForwardedCycles, ph.FastForwards)
	}
	if ph.SteppedCycles == 0 {
		t.Error("no stepped cycles recorded")
	}
	if ph.AvgActiveComponents <= 0 {
		t.Errorf("avg active components = %v, want positive", ph.AvgActiveComponents)
	}
	if ph.BuildSeconds < 0 || ph.WarmupSeconds <= 0 || ph.MeasureSeconds <= 0 {
		t.Errorf("phase wall times = %v/%v/%v, want warmup and measure positive",
			ph.BuildSeconds, ph.WarmupSeconds, ph.MeasureSeconds)
	}
}

// TestPhasesUngatedRunNeverFastForwards: forcing lockstep stepping must
// report a zero skip ratio and full active-set occupancy.
func TestPhasesUngatedRunNeverFastForwards(t *testing.T) {
	prof, ok := workload.ByName("429.mcf")
	if !ok {
		t.Fatal("missing 429.mcf")
	}
	res := RunOne(Spec{Kind: hier.LNUCAL3, Levels: 3, Ungated: true}, prof, Quick, 1)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	ph := res.Phases
	if ph.FastForwardedCycles != 0 || ph.FastForwards != 0 || ph.SkipRatio != 0 {
		t.Errorf("ungated run fast-forwarded: %+v", ph)
	}
	if ph.EvalsSkipped != 0 {
		t.Errorf("ungated run skipped %d Evals", ph.EvalsSkipped)
	}
	if ph.SteppedCycles == 0 {
		t.Error("no stepped cycles recorded")
	}
	// Lockstep stepping evaluates every component every cycle.
	if got := ph.AvgActiveComponents; got != float64(int(got)) || got < 1 {
		t.Errorf("ungated avg active = %v, want the integral component count", got)
	}
}

// TestPhasesOnMixRun: the CMP path reports the same breakdown, with
// Instructions summed over cores.
func TestPhasesOnMixRun(t *testing.T) {
	res := RunMix(MixSpec{
		Kind:       hier.LNUCAL3,
		Levels:     3,
		Benchmarks: []string{"429.mcf", "482.sphinx3"},
	}, Quick, 1)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	ph := res.Phases
	if ph == nil {
		t.Fatal("mix run reported no Phases")
	}
	var committed uint64
	for _, c := range res.PerCore {
		committed += c.Committed
	}
	if ph.Instructions != committed {
		t.Errorf("phases instructions = %d, per-core sum = %d", ph.Instructions, committed)
	}
	if ph.MIPS <= 0 || ph.MeasureSeconds <= 0 || ph.WarmupSeconds <= 0 {
		t.Errorf("mix phase timings not positive: %+v", ph)
	}
	if ph.SteppedCycles == 0 {
		t.Error("mix run recorded no stepped cycles")
	}
}
