package hier

import (
	"testing"

	"repro/internal/workload"
)

// TestFastForwardEngages proves the quiescence protocol actually fires
// on every hierarchy: a memory-bound window must spend a substantial
// share of its cycles fast-forwarded, not stepped. (Bit-identity of the
// results is pinned separately by the exp-level equivalence tests.)
func TestFastForwardEngages(t *testing.T) {
	prof, ok := workload.ByName("429.mcf")
	if !ok {
		t.Fatal("missing 429.mcf")
	}
	for _, kind := range []Kind{Conventional, LNUCAL3, DNUCAOnly, LNUCADNUCA} {
		sys, err := Build(kind, prof, Options{Seed: 3, MaxInstr: 30_000})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		sys.Prewarm()
		ran := sys.Run(2_000_000)
		k := sys.Kernel
		if k.SkippedCycles == 0 {
			t.Errorf("%s: ran %d cycles without a single fast-forwarded cycle", kind, ran)
		}
		if k.FastForwards == 0 {
			t.Errorf("%s: no bulk clock advance happened", kind)
		}
		pct := 100 * float64(k.SkippedCycles) / float64(ran)
		t.Logf("%s: %d cycles, %.1f%% fast-forwarded in %d jumps, %d idle Evals skipped",
			kind, ran, pct, k.FastForwards, k.EvalsSkipped)
	}
}
