// Package hier assembles the four cache hierarchies the paper evaluates
// (Fig. 1): the conventional three-level baseline, the L-NUCA backed by
// the same L3, the D-NUCA baseline, and the L-NUCA backed by the D-NUCA.
// It also owns the Table I energy constants and converts run statistics
// into the Fig. 4(b)/5(b) energy breakdowns.
package hier

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dnuca"
	"repro/internal/lnuca"
	"repro/internal/mem"
	"repro/internal/nocpower"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Kind selects a hierarchy organization.
type Kind uint8

const (
	// Conventional is L1 32KB / L2 256KB / L3 8MB (Fig. 1(a)).
	Conventional Kind = iota
	// LNUCAL3 replaces the L2 with an L-NUCA (Fig. 1(b)).
	LNUCAL3
	// DNUCAOnly is L1 / D-NUCA 8MB (Fig. 1(c)).
	DNUCAOnly
	// LNUCADNUCA inserts an L-NUCA between L1 and D-NUCA (Fig. 1(d)).
	LNUCADNUCA
)

func (k Kind) String() string {
	switch k {
	case Conventional:
		return "L2-256KB"
	case LNUCAL3:
		return "LN+L3"
	case DNUCAOnly:
		return "DN-4x8"
	case LNUCADNUCA:
		return "LN+DN-4x8"
	default:
		return "hier?"
	}
}

// Table I energy constants (pJ per access, mW leakage).
const (
	L1ReadPJ, L1LeakMW     = 21.2, 12.8
	L2ReadPJ, L2LeakMW     = 47.2, 66.9
	TileReadPJ, TileLeakMW = 14.0, 2.2
	L3ReadPJ, L3LeakMW     = 20.9, 600.0
	DNReadPJ, DNBankLeakMW = 131.2, 33.5
	TileTagProbePJ         = 0.25 * TileReadPJ // miss lookups stop at tags
	TileFillPJ             = 1.1 * TileReadPJ
	UComparePJ             = 0.5
	RouterLeakPerTileMW    = 0.15
)

// Link energy specs: L-NUCA links are message-wide and a tile-pitch long;
// the D-NUCA's 256-bit links span 256KB banks.
var (
	searchLink    = nocpower.LinkSpec{Bits: 48, LengthMM: 0.25}
	transportLink = nocpower.LinkSpec{Bits: 32*8 + 40, LengthMM: 0.25}
	dnucaLink     = nocpower.LinkSpec{Bits: 256, LengthMM: 1.0}
)

// Options tune a built system.
type Options struct {
	// LNUCALevels selects 2..4 (72KB..248KB) fabrics; ignored otherwise.
	LNUCALevels int
	// Seed drives all randomized behaviour (routing, workload).
	Seed uint64
	// Core overrides the processor model (zero value = Table I default).
	Core cpu.Config
	// MaxInstr bounds committed instructions (the paper runs 100M after
	// warmup; scaled-down runs preserve the shape).
	MaxInstr uint64
	// ShuffleRegistration, when non-zero, registers components with the
	// kernel in a seeded permuted order. Results must not change — the
	// two-phase kernel guarantees order independence — so tests use this
	// to prove the wiring keeps that property.
	ShuffleRegistration uint64
	// Ungated disables the kernel's quiescence fast-forward, forcing
	// plain lockstep stepping. Results are bit-identical either way;
	// the gating-equivalence tests and benchmarks use it.
	Ungated bool
	// Stream, when non-nil, feeds the core instead of a fresh synthetic
	// generator for prof: the hook the trace subsystem uses to record
	// (a capturing wrapper around the generator) and to replay (a
	// recorded trace). prof still selects the functional prewarm, so a
	// replay warms exactly what the recording run warmed.
	Stream cpu.Stream
}

// System is one fully-wired simulated machine.
type System struct {
	Kind   Kind
	Name   string
	Kernel *sim.Kernel
	Core   *cpu.Core
	L1     *cache.Controller // conventional / D-NUCA hierarchies
	L2     *cache.Controller // conventional only
	L3     *cache.Controller // conventional and LNUCAL3
	Fabric *lnuca.Fabric     // LNUCAL3 and LNUCADNUCA
	DN     *dnuca.DNUCA      // DNUCAOnly and LNUCADNUCA
	Memory *mem.MainMemory

	ids     mem.IDSource
	levels  int
	profile workload.Profile
}

// l1Config returns the Table I L1 as a write-through controller.
func l1Config() cache.ControllerConfig {
	return cache.ControllerConfig{
		Name:             "L1",
		Bank:             cache.BankConfig{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 32},
		CompletionCycles: 0, // port crossings model the 2-cycle completion
		InitiationCycles: 1,
		Ports:            2,
		Policy:           cache.WriteThrough,
		Mode:             cache.Parallel,
		MSHREntries:      16,
		MSHRSecondary:    4,
		WriteBufEntries:  8,
	}
}

// l2Config returns the Table I 256KB L2.
func l2Config() cache.ControllerConfig {
	return cache.ControllerConfig{
		Name:             "L2",
		Bank:             cache.BankConfig{SizeBytes: 256 << 10, Ways: 8, BlockBytes: 64},
		CompletionCycles: 4,
		InitiationCycles: 2,
		Ports:            1,
		Policy:           cache.CopyBack,
		Mode:             cache.Serial,
		MSHREntries:      16,
		MSHRSecondary:    4,
		WriteBufEntries:  32,
		BusCycles:        2, // 64B over the L1-L2 link
		TagMissCycles:    3, // serial-mode tag path before forwarding
	}
}

// l3Config returns the Table I 8MB L3.
func l3Config() cache.ControllerConfig {
	return cache.ControllerConfig{
		Name:             "L3",
		Bank:             cache.BankConfig{SizeBytes: 8 << 20, Ways: 16, BlockBytes: 128},
		CompletionCycles: 20,
		InitiationCycles: 15,
		Ports:            1,
		Policy:           cache.CopyBack,
		Mode:             cache.Serial,
		MSHREntries:      8,
		MSHRSecondary:    4,
		WriteBufEntries:  32,
		BusCycles:        4, // 128B block return to the L2/L-NUCA
		TagMissCycles:    4,
	}
}

// Build wires a complete system running the given workload profile.
func Build(kind Kind, prof workload.Profile, opt Options) (*System, error) {
	if opt.LNUCALevels == 0 {
		opt.LNUCALevels = 3
	}
	if opt.LNUCALevels < 2 || opt.LNUCALevels > 6 {
		return nil, fmt.Errorf("hier: unsupported L-NUCA levels %d", opt.LNUCALevels)
	}
	s := &System{
		Kind:    kind,
		Kernel:  sim.NewKernel(),
		levels:  opt.LNUCALevels,
		profile: prof,
	}
	s.Name = kind.String()
	if kind == LNUCAL3 || kind == LNUCADNUCA {
		s.Name = fmt.Sprintf("LN%d", opt.LNUCALevels)
		if kind == LNUCADNUCA {
			s.Name += "+DN-4x8"
		} else {
			s.Name += fmt.Sprintf("-%dKB", 32+8*lnuca.NumTilesForLevels(opt.LNUCALevels))
		}
	}

	stream := opt.Stream
	var err error
	if stream == nil {
		if stream, err = workload.NewGenerator(prof, opt.Seed); err != nil {
			return nil, err
		}
	}

	cpuPort := mem.NewPort(8, 8)
	coreCfg := opt.Core
	if coreCfg.FetchWidth == 0 {
		coreCfg = cpu.DefaultConfig()
	}
	s.Core = cpu.New("core", coreCfg, stream, cpuPort, &s.ids, opt.MaxInstr)
	comps := []sim.Component{s.Core}

	memPort := mem.NewPort(8, 8)
	switch kind {
	case Conventional:
		l1l2 := mem.NewPort(8, 8)
		l2l3 := mem.NewPort(8, 8)
		s.L1 = cache.NewController(l1Config(), cpuPort, l1l2, &s.ids)
		s.L2 = cache.NewController(l2Config(), l1l2, l2l3, &s.ids)
		s.L3 = cache.NewController(l3Config(), l2l3, memPort, &s.ids)
		comps = append(comps, s.L1, s.L2, s.L3)
	case LNUCAL3:
		lnl3 := mem.NewPort(8, 8)
		fcfg := lnuca.DefaultConfig(opt.LNUCALevels)
		fcfg.Seed = opt.Seed | 1
		s.Fabric, err = lnuca.NewFabric(fcfg, cpuPort, lnl3, &s.ids)
		if err != nil {
			return nil, err
		}
		s.L3 = cache.NewController(l3Config(), lnl3, memPort, &s.ids)
		comps = append(comps, s.Fabric, s.L3)
	case DNUCAOnly:
		l1dn := mem.NewPort(8, 8)
		s.L1 = cache.NewController(l1Config(), cpuPort, l1dn, &s.ids)
		s.DN, err = dnuca.New(dnuca.DefaultConfig(), l1dn, memPort, &s.ids)
		if err != nil {
			return nil, err
		}
		comps = append(comps, s.L1, s.DN)
	case LNUCADNUCA:
		lndn := mem.NewPort(8, 8)
		fcfg := lnuca.DefaultConfig(opt.LNUCALevels)
		fcfg.Seed = opt.Seed | 1
		s.Fabric, err = lnuca.NewFabric(fcfg, cpuPort, lndn, &s.ids)
		if err != nil {
			return nil, err
		}
		s.DN, err = dnuca.New(dnuca.DefaultConfig(), lndn, memPort, &s.ids)
		if err != nil {
			return nil, err
		}
		comps = append(comps, s.Fabric, s.DN)
	default:
		return nil, fmt.Errorf("hier: unknown kind %d", kind)
	}
	s.Memory = mem.NewMainMemory("dram", mem.DefaultMainMemoryConfig(), memPort)
	comps = append(comps, s.Memory)
	registerAll(s.Kernel, comps, opt.ShuffleRegistration)
	s.Kernel.SetGating(!opt.Ungated)
	return s, nil
}

// registerAll registers comps with the kernel, in a seeded permuted
// order when shuffle is non-zero (results must be order-independent; the
// equivalence tests prove it).
func registerAll(k *sim.Kernel, comps []sim.Component, shuffle uint64) {
	if shuffle != 0 {
		perm := make([]int, len(comps))
		sim.NewRand(shuffle).Perm(perm)
		shuffled := make([]sim.Component, len(comps))
		for i, j := range perm {
			shuffled[i] = comps[j]
		}
		comps = shuffled
	}
	for _, c := range comps {
		k.MustRegister(c)
	}
}

// Prewarm performs functional warmup: it installs the workload's hot,
// warm and cool regions into the structures that would hold them in
// steady state, the same role SimPoint-style checkpoint warming plays for
// the paper's 200M-instruction warmup.
func (s *System) Prewarm() {
	hotB, hotKB := workload.HotRange(s.profile)
	warmB, warmKB := workload.WarmRange(s.profile)
	coolB, coolKB := workload.CoolRange(s.profile)

	fill32 := func(bank *cache.Bank, base mem.Addr, kb int) {
		for off := 0; off < kb<<10; off += 32 {
			bank.Fill(base+mem.Addr(off), false)
		}
	}
	switch s.Kind {
	case Conventional:
		fill32(s.L1.Bank(), hotB, hotKB)
		for off := 0; off < warmKB<<10; off += 64 {
			s.L2.Bank().Fill(warmB+mem.Addr(off), false)
		}
		prewarmLLC(s.L3, hotB, hotKB, warmB, warmKB, coolB, coolKB)
	case LNUCAL3:
		fill32(s.Fabric.RTileBank(), hotB, hotKB)
		prewarmTiles(s.Fabric, warmB, warmKB)
		prewarmLLC(s.L3, hotB, hotKB, warmB, warmKB, coolB, coolKB)
	case DNUCAOnly:
		fill32(s.L1.Bank(), hotB, hotKB)
		prewarmDN(s.DN, hotB, hotKB, warmB, warmKB, coolB, coolKB)
	case LNUCADNUCA:
		fill32(s.Fabric.RTileBank(), hotB, hotKB)
		prewarmTiles(s.Fabric, warmB, warmKB)
		prewarmDN(s.DN, hotB, hotKB, warmB, warmKB, coolB, coolKB)
	}
}

// prewarmLLC installs hot+warm+cool into an inclusive SRAM LLC (the
// shared structure in CMP builds; per-system in single-core ones).
func prewarmLLC(l3 *cache.Controller, hotB mem.Addr, hotKB int, warmB mem.Addr, warmKB int, coolB mem.Addr, coolKB int) {
	for off := 0; off < (coolKB+warmKB+hotKB)<<10; off += 128 {
		a := mem.Addr(off)
		switch {
		case off < coolKB<<10:
			a += coolB
		case off < (coolKB+warmKB)<<10:
			a = warmB + a - mem.Addr(coolKB<<10)
		default:
			a = hotB + a - mem.Addr((coolKB+warmKB)<<10)
		}
		l3.Bank().Fill(a, false)
	}
}

// prewarmTiles spreads warm-region lines across the fabric tiles,
// innermost levels first, one copy per line (content exclusion).
func prewarmTiles(f *lnuca.Fabric, base mem.Addr, kb int) {
	g := f.Geometry()
	// Order sites by latency: hotter lines closer to the r-tile.
	var order []int
	for lat := 3; lat <= g.MaxLatency(); lat++ {
		for i := range g.Sites {
			if g.Sites[i].Latency == lat {
				order = append(order, g.Sites[i].ID)
			}
		}
	}
	if len(order) == 0 {
		return
	}
	idx := 0
	for off := 0; off < kb<<10; off += 32 {
		line := base + mem.Addr(off)
		// Try successive tiles until one has set space (exclusion: at
		// most one copy).
		placed := false
		for try := 0; try < len(order) && !placed; try++ {
			b := f.TileBank(order[(idx+try)%len(order)])
			if b.HasSpace(line) {
				b.Fill(line, false)
				placed = true
			}
		}
		idx++
	}
}

// prewarmDN installs regions into the D-NUCA: warm in the closest rows,
// cool behind, matching post-migration steady state.
func prewarmDN(dn *dnuca.DNUCA, hotB mem.Addr, hotKB int, warmB mem.Addr, warmKB int, coolB mem.Addr, coolKB int) {
	cfg := dnuca.DefaultConfig()
	put := func(base mem.Addr, kb int, startRow int) {
		for off := 0; off < kb<<10; off += 128 {
			line := base + mem.Addr(off)
			col := int((uint64(line) / 128) % uint64(cfg.Cols))
			for r := startRow; r < cfg.Rows; r++ {
				b := dn.BankArray(col, r)
				if b.HasSpace(line) {
					b.Fill(line, false)
					break
				}
			}
		}
	}
	put(hotB, hotKB, 0)
	put(warmB, warmKB, 0)
	put(coolB, coolKB, 1)
}

// Run advances the system until the core finishes or maxCycles elapse,
// returning the executed cycle count.
func (s *System) Run(maxCycles uint64) uint64 {
	return s.Kernel.Run(maxCycles)
}

// Collect gathers every component's statistics.
func (s *System) Collect() *stats.Set {
	set := stats.NewSet()
	s.Core.Collect("core", set)
	if s.L1 != nil {
		s.L1.Collect("l1", set)
	}
	if s.L2 != nil {
		s.L2.Collect("l2", set)
	}
	if s.L3 != nil {
		s.L3.Collect("l3", set)
	}
	if s.Fabric != nil {
		s.Fabric.Collect("ln", set)
	}
	if s.DN != nil {
		s.DN.Collect("dn", set)
	}
	set.Add("mem.reads", s.Memory.Reads)
	set.Add("mem.writebacks", s.Memory.Writebacks)
	return set
}

// Energy converts a (possibly delta) statistics set from this system into
// the Fig. 4(b)/5(b) breakdown. cycles is the measured window length.
func (s *System) Energy(set *stats.Set, cycles uint64) power.Breakdown {
	var a power.Accountant
	switch s.Kind {
	case Conventional:
		a.AddDynamicPJ(float64(set.Counter("l1.bank_accesses")) * L1ReadPJ)
		a.AddDynamicPJ(float64(set.Counter("l2.bank_accesses")) * L2ReadPJ)
		a.AddDynamicPJ(float64(set.Counter("l3.bank_accesses")) * L3ReadPJ)
		a.AddLeakage(power.StaticL1RT, L1LeakMW)
		a.AddLeakage(power.StaticMid, L2LeakMW)
		a.AddLeakage(power.StaticLLC, L3LeakMW)
	case LNUCAL3:
		s.addFabricDynamic(&a, set)
		a.AddDynamicPJ(float64(set.Counter("l3.bank_accesses")) * L3ReadPJ)
		tiles := float64(lnuca.NumTilesForLevels(s.levels))
		a.AddLeakage(power.StaticL1RT, L1LeakMW)
		a.AddLeakage(power.StaticMid, tiles*(TileLeakMW+RouterLeakPerTileMW))
		a.AddLeakage(power.StaticLLC, L3LeakMW)
	case DNUCAOnly:
		a.AddDynamicPJ(float64(set.Counter("l1.bank_accesses")) * L1ReadPJ)
		s.addDNDynamic(&a, set)
		a.AddLeakage(power.StaticL1RT, L1LeakMW)
		a.AddLeakage(power.StaticLLC, 32*DNBankLeakMW)
	case LNUCADNUCA:
		s.addFabricDynamic(&a, set)
		s.addDNDynamic(&a, set)
		tiles := float64(lnuca.NumTilesForLevels(s.levels))
		a.AddLeakage(power.StaticL1RT, L1LeakMW)
		a.AddLeakage(power.StaticMid, tiles*(TileLeakMW+RouterLeakPerTileMW))
		a.AddLeakage(power.StaticLLC, 32*DNBankLeakMW)
	}
	return a.Finish(cycles)
}

// addFabricDynamic charges the L-NUCA's arrays and networks.
func (s *System) addFabricDynamic(a *power.Accountant, set *stats.Set) {
	rtAccesses := set.Counter("ln.rt_reads") + set.Counter("ln.rt_writes") + set.Counter("ln.rt_fills")
	a.AddDynamicPJ(float64(rtAccesses) * L1ReadPJ)
	// Tile arrays: misses cost the tag path, hits read data, fills and
	// evictions move whole blocks.
	lookups := set.Counter("ln.search_lookups")
	var hits uint64
	for lvl := 2; lvl <= s.levels; lvl++ {
		hits += set.Counter(fmt.Sprintf("ln.hits_le%d", lvl))
	}
	a.AddDynamicPJ(float64(lookups) * TileTagProbePJ)
	a.AddDynamicPJ(float64(hits) * TileReadPJ)
	a.AddDynamicPJ(float64(set.Counter("ln.u_compares")) * UComparePJ)
	// Networks (Orion-style event energy).
	a.AddDynamicPJ(float64(set.Counter("ln.search_traversals")) * searchLink.TraversalPJ())
	a.AddDynamicPJ(float64(set.Counter("ln.transport_hops")+set.Counter("ln.transport_delivered")) * transportLink.TraversalPJ())
	a.AddDynamicPJ(float64(set.Counter("ln.replacement_hops")) * (transportLink.TraversalPJ() + TileFillPJ))
}

// addDNDynamic charges the D-NUCA's banks and wormhole mesh.
func (s *System) addDNDynamic(a *power.Accountant, set *stats.Set) {
	a.AddDynamicPJ(float64(set.Counter("dn.bank_accesses")) * DNReadPJ)
	a.AddDynamicPJ(float64(set.Counter("dn.net_flit_hops")) * dnucaLink.TraversalPJ())
}

// CheckInvariants verifies structural invariants (used by tests).
func (s *System) CheckInvariants() error {
	if s.Fabric != nil {
		return s.Fabric.CheckExclusion()
	}
	return nil
}
