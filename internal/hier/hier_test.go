package hier

import (
	"testing"

	"repro/internal/power"
	"repro/internal/workload"
)

func buildAndRun(t *testing.T, kind Kind, prof workload.Profile, instr uint64, levels int) (*System, uint64) {
	t.Helper()
	s, err := Build(kind, prof, Options{LNUCALevels: levels, Seed: 42, MaxInstr: instr})
	if err != nil {
		t.Fatal(err)
	}
	s.Prewarm()
	cycles := s.Run(20_000_000)
	if !s.Core.Done() {
		t.Fatalf("%v: core committed only %d of %d instructions in %d cycles",
			kind, s.Core.Committed, instr, cycles)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	return s, cycles
}

func TestAllHierarchiesComplete(t *testing.T) {
	prof, _ := workload.ByName("403.gcc")
	for _, kind := range []Kind{Conventional, LNUCAL3, DNUCAOnly, LNUCADNUCA} {
		s, cycles := buildAndRun(t, kind, prof, 8000, 3)
		if s.Core.IPC() <= 0.05 || s.Core.IPC() > 4 {
			t.Errorf("%v: implausible IPC %.3f", kind, s.Core.IPC())
		}
		if cycles == 0 {
			t.Errorf("%v: zero cycles", kind)
		}
	}
}

func TestNamesDistinguishConfigs(t *testing.T) {
	prof, _ := workload.ByName("403.gcc")
	s2, _ := Build(LNUCAL3, prof, Options{LNUCALevels: 2, MaxInstr: 1})
	s3, _ := Build(LNUCAL3, prof, Options{LNUCALevels: 3, MaxInstr: 1})
	if s2.Name != "LN2-72KB" || s3.Name != "LN3-144KB" {
		t.Fatalf("names = %q, %q; want LN2-72KB, LN3-144KB", s2.Name, s3.Name)
	}
	sd, _ := Build(LNUCADNUCA, prof, Options{LNUCALevels: 2, MaxInstr: 1})
	if sd.Name != "LN2+DN-4x8" {
		t.Fatalf("name = %q, want LN2+DN-4x8", sd.Name)
	}
}

func TestLNUCAFasterThanConventionalOnWarmWorkload(t *testing.T) {
	// A warm-heavy profile is exactly where the L-NUCA should shine: its
	// Le2/Le3 tiles serve former L2 hits at lower latency.
	prof, _ := workload.ByName("482.sphinx3")
	conv, _ := buildAndRun(t, Conventional, prof, 12000, 3)
	ln, _ := buildAndRun(t, LNUCAL3, prof, 12000, 3)
	if ln.Core.IPC() <= conv.Core.IPC() {
		t.Fatalf("LN3 IPC %.3f not above conventional %.3f (avg load lat %.1f vs %.1f)",
			ln.Core.IPC(), conv.Core.IPC(),
			ln.Core.AvgLoadLatency(), conv.Core.AvgLoadLatency())
	}
	if ln.Core.AvgLoadLatency() >= conv.Core.AvgLoadLatency() {
		t.Fatalf("LN3 load latency %.2f not below conventional %.2f",
			ln.Core.AvgLoadLatency(), conv.Core.AvgLoadLatency())
	}
}

func TestPrewarmEstablishesResidency(t *testing.T) {
	prof, _ := workload.ByName("403.gcc")
	s, err := Build(Conventional, prof, Options{MaxInstr: 1000})
	if err != nil {
		t.Fatal(err)
	}
	s.Prewarm()
	hotB, _ := workload.HotRange(prof)
	warmB, _ := workload.WarmRange(prof)
	if !s.L1.Bank().Probe(hotB) {
		t.Error("hot region not in L1 after prewarm")
	}
	if !s.L2.Bank().Probe(warmB) {
		t.Error("warm region not in L2 after prewarm")
	}
	if !s.L3.Bank().Probe(warmB) || !s.L3.Bank().Probe(hotB) {
		t.Error("L3 not inclusive after prewarm")
	}
}

func TestPrewarmLNUCAKeepsExclusion(t *testing.T) {
	prof, _ := workload.ByName("434.zeusmp") // large warm region
	s, err := Build(LNUCAL3, prof, Options{LNUCALevels: 3, MaxInstr: 1000})
	if err != nil {
		t.Fatal(err)
	}
	s.Prewarm()
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("prewarm broke exclusion: %v", err)
	}
	// Some warm lines must be resident in tiles.
	warmB, _ := workload.WarmRange(prof)
	found := false
	for id := 0; id < s.Fabric.Geometry().NumTiles(); id++ {
		if s.Fabric.TileBank(id).Probe(warmB) {
			found = true
		}
	}
	if !found {
		t.Error("warm region absent from every tile after prewarm")
	}
}

func TestEnergyBreakdownShape(t *testing.T) {
	prof, _ := workload.ByName("403.gcc")
	conv, cyc := buildAndRun(t, Conventional, prof, 8000, 3)
	set := conv.Collect()
	b := conv.Energy(set, cyc)
	if b.Total() <= 0 {
		t.Fatal("zero total energy")
	}
	// The paper: static dominates, and the L3's 600 mW dwarfs the rest.
	if b.Get(power.StaticLLC) <= b.Get(power.StaticL1RT) ||
		b.Get(power.StaticLLC) <= b.Get(power.StaticMid) {
		t.Fatalf("L3 static should dominate: %v", b)
	}
	ln, cyc2 := buildAndRun(t, LNUCAL3, prof, 8000, 3)
	b2 := ln.Energy(ln.Collect(), cyc2)
	if b2.Total() <= 0 {
		t.Fatal("zero L-NUCA energy")
	}
	if b2.Get(power.StaticMid) <= 0 {
		t.Fatal("tile leakage not accounted")
	}
}

func TestDNUCAEnergyUsesBankCounts(t *testing.T) {
	prof, _ := workload.ByName("429.mcf")
	s, cyc := buildAndRun(t, DNUCAOnly, prof, 6000, 3)
	b := s.Energy(s.Collect(), cyc)
	if b.Get(power.Dynamic) <= 0 {
		t.Fatal("no dynamic energy for D-NUCA run")
	}
	// D-NUCA static: 32 banks x 33.5 mW > L3's 600 mW.
	if b.Get(power.StaticLLC) <= 0 {
		t.Fatal("no D-NUCA leakage")
	}
	if b.Get(power.StaticMid) != 0 {
		t.Fatal("DNUCAOnly has no mid level")
	}
}

func TestBuildValidation(t *testing.T) {
	prof, _ := workload.ByName("403.gcc")
	if _, err := Build(LNUCAL3, prof, Options{LNUCALevels: 1}); err == nil {
		t.Fatal("1-level L-NUCA must be rejected")
	}
	if _, err := Build(Kind(99), prof, Options{}); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
	var bad workload.Profile
	if _, err := Build(Conventional, bad, Options{}); err == nil {
		t.Fatal("invalid profile must be rejected")
	}
}

func TestCollectHasAllSections(t *testing.T) {
	prof, _ := workload.ByName("403.gcc")
	s, _ := buildAndRun(t, LNUCADNUCA, prof, 5000, 2)
	set := s.Collect()
	for _, key := range []string{"core.committed", "ln.searches", "dn.reads", "mem.reads"} {
		if set.Counter(key) == 0 && key != "mem.reads" {
			t.Errorf("counter %s missing or zero:\n", key)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Conventional: "L2-256KB", LNUCAL3: "LN+L3",
		DNUCAOnly: "DN-4x8", LNUCADNUCA: "LN+DN-4x8",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), s)
		}
	}
}
