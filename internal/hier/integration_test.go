package hier

import (
	"testing"

	"repro/internal/workload"
)

// TestSameWorkloadSameCommitCount: every hierarchy must execute exactly
// the same instruction stream — the comparison is apples to apples.
func TestSameWorkloadSameCommitCount(t *testing.T) {
	prof, _ := workload.ByName("403.gcc")
	var got []uint64
	for _, kind := range []Kind{Conventional, LNUCAL3, DNUCAOnly, LNUCADNUCA} {
		s, _ := buildAndRun(t, kind, prof, 5000, 2)
		got = append(got, s.Core.Committed)
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatalf("commit counts diverge across hierarchies: %v", got)
		}
	}
}

// TestMemoryTrafficOrdering: the L-NUCA filters the same traffic the L2
// did, so DRAM read counts should be in the same ballpark across
// hierarchies for the same workload.
func TestMemoryTrafficOrdering(t *testing.T) {
	prof, _ := workload.ByName("462.libquantum") // streaming: plenty of DRAM traffic
	conv, _ := buildAndRun(t, Conventional, prof, 10000, 3)
	ln, _ := buildAndRun(t, LNUCAL3, prof, 10000, 3)
	convReads := conv.Memory.Reads
	lnReads := ln.Memory.Reads
	if convReads == 0 || lnReads == 0 {
		t.Fatal("streaming workload produced no DRAM traffic")
	}
	ratio := float64(lnReads) / float64(convReads)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("DRAM reads diverge: conventional %d vs L-NUCA %d", convReads, lnReads)
	}
}

// TestPointerChaserLeastHelped: mcf-style pointer chasing over huge
// footprints gains the least from an L-NUCA (its misses go to DRAM no
// matter what sits in between) — a sanity anchor for the workload model.
func TestPointerChaserLeastHelped(t *testing.T) {
	mcf, _ := workload.ByName("429.mcf")
	pov, _ := workload.ByName("453.povray")
	gain := func(p workload.Profile) float64 {
		conv, _ := buildAndRun(t, Conventional, p, 10000, 3)
		ln, _ := buildAndRun(t, LNUCAL3, p, 10000, 3)
		return ln.Core.IPC() / conv.Core.IPC()
	}
	gm, gp := gain(mcf), gain(pov)
	// povray is cache-resident: near-zero gain but near-zero loss; mcf
	// should not be the biggest winner.
	if gm > 1.15 {
		t.Fatalf("mcf gained %.1f%% from L-NUCA; pointer chasing should not benefit that much",
			100*(gm-1))
	}
	if gp < 0.93 || gp > 1.15 {
		t.Fatalf("povray ratio %.3f implausible for a cache-resident workload", gp)
	}
}

// TestLNUCADNUCAFiltersBankAccesses: the front L-NUCA must reduce D-NUCA
// bank activity (the Fig. 5(b) dynamic-energy argument).
func TestLNUCADNUCAFiltersBankAccesses(t *testing.T) {
	prof, _ := workload.ByName("482.sphinx3")
	base, _ := buildAndRun(t, DNUCAOnly, prof, 8000, 2)
	front, _ := buildAndRun(t, LNUCADNUCA, prof, 8000, 2)
	if front.DN.BankAccesses >= base.DN.BankAccesses {
		t.Fatalf("L-NUCA front end did not filter D-NUCA activity: %d vs %d bank accesses",
			front.DN.BankAccesses, base.DN.BankAccesses)
	}
}

// TestDeterministicAcrossBuilds: identical options give identical cycle
// counts for every hierarchy (the reproducibility guarantee).
func TestDeterministicAcrossBuilds(t *testing.T) {
	prof, _ := workload.ByName("434.zeusmp")
	for _, kind := range []Kind{Conventional, LNUCAL3, LNUCADNUCA} {
		a, ca := buildAndRun(t, kind, prof, 4000, 3)
		b, cb := buildAndRun(t, kind, prof, 4000, 3)
		if ca != cb || a.Core.Committed != b.Core.Committed {
			t.Fatalf("%v: nondeterministic (%d/%d vs %d/%d cycles/instr)",
				kind, ca, a.Core.Committed, cb, b.Core.Committed)
		}
	}
}
