package hier

// Steady-state allocation benchmarks: one op = one ungated kernel Step
// of a fully-built system, so the allocs/op column reads directly as
// allocs/cycle. The hot cycle loop reuses ring buffers, hoisted scratch
// and MSHR freelists; after warmup the per-cycle allocation rate must
// sit at ~0 for every hierarchy (the occasional residue is queue-ring
// growth on a new high-water mark). CI records these in BENCH_sim.json
// so allocation regressions in the cycle loop are visible per PR.

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func benchSystem(b *testing.B, kind Kind) *System {
	b.Helper()
	prof, ok := workload.ByName("429.mcf")
	if !ok {
		b.Fatal("missing 429.mcf")
	}
	sys, err := Build(kind, prof, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Benchmark with an activity probe attached: the 0 allocs/cycle pin
	// must hold for an instrumented kernel, not just a bare one.
	sys.Kernel.SetProbe(&sim.CountingProbe{})
	sys.Prewarm()
	// Reach steady state: queues, rings and MSHR freelists at their
	// high-water marks.
	sys.Run(100_000)
	return sys
}

// BenchmarkStepAllocs pins the per-cycle allocation rate of the full
// cycle loop (Eval+Commit of every component), per hierarchy.
func BenchmarkStepAllocs(b *testing.B) {
	for _, kind := range []Kind{Conventional, LNUCAL3, DNUCAOnly, LNUCADNUCA} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			sys := benchSystem(b, kind)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Kernel.Step()
			}
		})
	}
}

// BenchmarkGatedCycleAllocs is the same loop through the gated Run path
// (poll + active-set stepping + fast-forward), confirming the gating
// machinery itself allocates nothing per cycle.
func BenchmarkGatedCycleAllocs(b *testing.B) {
	sys := benchSystem(b, LNUCAL3)
	b.ReportAllocs()
	b.ResetTimer()
	ran := sys.Run(uint64(b.N))
	b.StopTimer()
	if ran == 0 {
		b.Fatal("no cycles ran")
	}
	b.ReportMetric(100*float64(sys.Kernel.SkippedCycles)/float64(sys.Kernel.Cycle()),
		"skipped_pct")
}
