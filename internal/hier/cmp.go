package hier

// Multi-programmed CMP assembly: N out-of-order cores, each with its own
// private first levels (L1+L2, or an L-NUCA fabric, per the four Fig. 1
// organizations), contending for one shared 8MB last level — an SRAM L3
// or a D-NUCA — and, behind it, the single main-memory channel. The
// shared structure sits behind a round-robin bandwidth arbiter
// (mem.Arbiter), which is where inter-core interference becomes visible:
// its grant/conflict counters are the contention statistics.
//
// Each core runs its own benchmark in a disjoint address space (core
// index << 32), the standard multi-programmed methodology: no sharing,
// pure capacity and bandwidth contention, as in the CMP NUCA studies
// this mode is modeled after.

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dnuca"
	"repro/internal/lnuca"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MaxCMPCores bounds a CMP build; the paper-scale LLC stops making sense
// beyond 8 contenders.
const MaxCMPCores = 8

// coreAddrStride separates per-core address spaces (4GB each, far beyond
// any region a profile touches).
const coreAddrStride = mem.Addr(1) << 32

// CMPOptions tunes a multi-core build.
type CMPOptions struct {
	// LNUCALevels and Seed mean what they do in Options.
	LNUCALevels int
	Seed        uint64
	// Core overrides the per-core processor model (zero value = default).
	Core cpu.Config
	// LLCGrantsPerCycle bounds requests entering the shared LLC per cycle
	// (default 1, the Table I single-ported LLC).
	LLCGrantsPerCycle int
	// ShuffleRegistration, when non-zero, registers components with the
	// kernel in a seeded permuted order. Results must not change — the
	// two-phase kernel guarantees order independence — so tests use this
	// to prove the CMP wiring keeps that property.
	ShuffleRegistration uint64
	// Ungated disables the kernel's quiescence fast-forward (see
	// Options.Ungated); results are bit-identical either way.
	Ungated bool
}

// CMPSystem is one fully-wired multi-core machine.
type CMPSystem struct {
	Kind   Kind
	Name   string
	Kernel *sim.Kernel
	Cores  []*cpu.Core
	// Per-core private levels (nil entries where the kind has none).
	L1s     []*cache.Controller
	L2s     []*cache.Controller
	Fabrics []*lnuca.Fabric
	// Shared last level: L3 for Conventional/LNUCAL3, DN otherwise.
	L3     *cache.Controller
	DN     *dnuca.DNUCA
	Arb    *mem.Arbiter
	Memory *mem.MainMemory

	ids      mem.IDSource
	levels   int
	profiles []workload.Profile
}

// NumCores returns the core count.
func (s *CMPSystem) NumCores() int { return len(s.Cores) }

// CoreOffset returns core i's address-space base.
func CoreOffset(i int) mem.Addr { return mem.Addr(i) * coreAddrStride }

// coreSeed derives core i's seed from the run seed; distinct per core so
// two copies of one benchmark do not run in lockstep.
func coreSeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*0x9E3779B97F4A7C15
}

// BuildCMP wires a CMP running one workload profile per core. Every core
// gets the private side of the chosen Fig. 1 organization; the 8MB last
// level and the memory channel are shared through the arbiter.
func BuildCMP(kind Kind, profs []workload.Profile, opt CMPOptions) (*CMPSystem, error) {
	n := len(profs)
	if n < 1 || n > MaxCMPCores {
		return nil, fmt.Errorf("hier: CMP wants 1..%d cores, got %d", MaxCMPCores, n)
	}
	if opt.LNUCALevels == 0 {
		opt.LNUCALevels = 3
	}
	if opt.LNUCALevels < 2 || opt.LNUCALevels > 6 {
		return nil, fmt.Errorf("hier: unsupported L-NUCA levels %d", opt.LNUCALevels)
	}
	s := &CMPSystem{
		Kind:     kind,
		Kernel:   sim.NewKernel(),
		levels:   opt.LNUCALevels,
		profiles: profs,
	}
	s.Name = fmt.Sprintf("%dx %s", n, kind.String())

	coreCfg := opt.Core
	if coreCfg.FetchWidth == 0 {
		coreCfg = cpu.DefaultConfig()
	}

	var comps []sim.Component
	upPorts := make([]*mem.Port, n)
	for i, prof := range profs {
		seed := coreSeed(opt.Seed, i)
		gen, err := workload.NewGeneratorAt(prof, seed, CoreOffset(i))
		if err != nil {
			return nil, err
		}
		cpuPort := mem.NewPort(8, 8)
		// Cores never stop the kernel on their own (maxInstr 0): in a
		// multi-programmed run a finished core keeps executing to keep
		// pressure on the shared levels while slower cores measure.
		core := cpu.New(fmt.Sprintf("core%d", i), coreCfg, gen, cpuPort, &s.ids, 0)
		s.Cores = append(s.Cores, core)
		comps = append(comps, core)

		llcSide := mem.NewPort(8, 8)
		switch kind {
		case Conventional:
			l1l2 := mem.NewPort(8, 8)
			l1cfg := l1Config()
			l1cfg.Name = fmt.Sprintf("L1.%d", i)
			l2cfg := l2Config()
			l2cfg.Name = fmt.Sprintf("L2.%d", i)
			l1 := cache.NewController(l1cfg, cpuPort, l1l2, &s.ids)
			l2 := cache.NewController(l2cfg, l1l2, llcSide, &s.ids)
			s.L1s = append(s.L1s, l1)
			s.L2s = append(s.L2s, l2)
			comps = append(comps, l1, l2)
		case LNUCAL3, LNUCADNUCA:
			fcfg := lnuca.DefaultConfig(opt.LNUCALevels)
			fcfg.Name = fmt.Sprintf("LN%d.%d", opt.LNUCALevels, i)
			fcfg.Seed = seed | 1
			fab, err := lnuca.NewFabric(fcfg, cpuPort, llcSide, &s.ids)
			if err != nil {
				return nil, err
			}
			s.Fabrics = append(s.Fabrics, fab)
			comps = append(comps, fab)
		case DNUCAOnly:
			l1cfg := l1Config()
			l1cfg.Name = fmt.Sprintf("L1.%d", i)
			l1 := cache.NewController(l1cfg, cpuPort, llcSide, &s.ids)
			s.L1s = append(s.L1s, l1)
			comps = append(comps, l1)
		default:
			return nil, fmt.Errorf("hier: unknown kind %d", kind)
		}
		upPorts[i] = llcSide
	}

	// The shared side: arbiter -> LLC -> memory channel.
	sharedUp := mem.NewPort(2*n, 2*n)
	arb, err := mem.NewArbiter(mem.ArbiterConfig{
		Name:           "llc-arb",
		GrantsPerCycle: opt.LLCGrantsPerCycle,
	}, upPorts, sharedUp)
	if err != nil {
		return nil, err
	}
	s.Arb = arb
	comps = append(comps, arb)

	memPort := mem.NewPort(8, 8)
	switch kind {
	case Conventional, LNUCAL3:
		s.L3 = cache.NewController(l3Config(), sharedUp, memPort, &s.ids)
		comps = append(comps, s.L3)
	case DNUCAOnly, LNUCADNUCA:
		s.DN, err = dnuca.New(dnuca.DefaultConfig(), sharedUp, memPort, &s.ids)
		if err != nil {
			return nil, err
		}
		comps = append(comps, s.DN)
	}
	s.Memory = mem.NewMainMemory("dram", mem.DefaultMainMemoryConfig(), memPort)
	comps = append(comps, s.Memory)

	registerAll(s.Kernel, comps, opt.ShuffleRegistration)
	s.Kernel.SetGating(!opt.Ungated)
	return s, nil
}

// Prewarm functionally warms every core's private levels with its own
// regions and installs all cores' working sets into the shared LLC, the
// CMP counterpart of System.Prewarm.
func (s *CMPSystem) Prewarm() {
	fill32 := func(bank *cache.Bank, base mem.Addr, kb int) {
		for off := 0; off < kb<<10; off += 32 {
			bank.Fill(base+mem.Addr(off), false)
		}
	}
	for i, prof := range s.profiles {
		off := CoreOffset(i)
		hotB, hotKB := workload.HotRange(prof)
		warmB, warmKB := workload.WarmRange(prof)
		coolB, coolKB := workload.CoolRange(prof)
		hotB, warmB, coolB = hotB+off, warmB+off, coolB+off

		switch s.Kind {
		case Conventional:
			fill32(s.L1s[i].Bank(), hotB, hotKB)
			for o := 0; o < warmKB<<10; o += 64 {
				s.L2s[i].Bank().Fill(warmB+mem.Addr(o), false)
			}
			prewarmLLC(s.L3, hotB, hotKB, warmB, warmKB, coolB, coolKB)
		case LNUCAL3:
			fill32(s.Fabrics[i].RTileBank(), hotB, hotKB)
			prewarmTiles(s.Fabrics[i], warmB, warmKB)
			prewarmLLC(s.L3, hotB, hotKB, warmB, warmKB, coolB, coolKB)
		case DNUCAOnly:
			fill32(s.L1s[i].Bank(), hotB, hotKB)
			prewarmDN(s.DN, hotB, hotKB, warmB, warmKB, coolB, coolKB)
		case LNUCADNUCA:
			fill32(s.Fabrics[i].RTileBank(), hotB, hotKB)
			prewarmTiles(s.Fabrics[i], warmB, warmKB)
			prewarmDN(s.DN, hotB, hotKB, warmB, warmKB, coolB, coolKB)
		}
	}
}

// Run advances the machine by at most maxCycles.
func (s *CMPSystem) Run(maxCycles uint64) uint64 {
	return s.Kernel.Run(maxCycles)
}

// MinCommitted returns the smallest committed-instruction count across
// cores: the multi-programmed window boundary tracker.
func (s *CMPSystem) MinCommitted() uint64 {
	min := s.Cores[0].Committed
	for _, c := range s.Cores[1:] {
		if c.Committed < min {
			min = c.Committed
		}
	}
	return min
}

// Collect gathers every component's statistics, namespacing each core's
// private side under "c<i>." and keeping shared structures global.
func (s *CMPSystem) Collect() *stats.Set {
	set := stats.NewSet()
	for i, core := range s.Cores {
		per := stats.NewSet()
		core.Collect("core", per)
		if i < len(s.L1s) && s.L1s[i] != nil {
			s.L1s[i].Collect("l1", per)
		}
		if i < len(s.L2s) && s.L2s[i] != nil {
			s.L2s[i].Collect("l2", per)
		}
		if i < len(s.Fabrics) && s.Fabrics[i] != nil {
			s.Fabrics[i].Collect("ln", per)
		}
		set.MergePrefixed(fmt.Sprintf("c%d", i), per)
	}
	if s.L3 != nil {
		s.L3.Collect("l3", set)
	}
	if s.DN != nil {
		s.DN.Collect("dn", set)
	}
	for i := range s.Arb.Granted {
		set.Add(fmt.Sprintf("arb.grants.c%d", i), s.Arb.Granted[i])
		set.Add(fmt.Sprintf("arb.conflicts.c%d", i), s.Arb.Conflicts[i])
	}
	set.Add("arb.resp_routed", s.Arb.RespRouted)
	set.Add("mem.reads", s.Memory.Reads)
	set.Add("mem.writebacks", s.Memory.Writebacks)
	return set
}

// CheckInvariants verifies per-fabric structural invariants.
func (s *CMPSystem) CheckInvariants() error {
	for i, f := range s.Fabrics {
		if f == nil {
			continue
		}
		if err := f.CheckExclusion(); err != nil {
			return fmt.Errorf("core %d: %w", i, err)
		}
	}
	return nil
}
