package hier

import (
	"fmt"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func mixProfiles(t *testing.T, names ...string) []workload.Profile {
	t.Helper()
	out := make([]workload.Profile, len(names))
	for i, n := range names {
		p, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("unknown benchmark %q", n)
		}
		out[i] = p
	}
	return out
}

// runCMP builds, prewarms and advances a CMP until every core commits at
// least target instructions (bounded by a generous cycle cap).
func runCMP(t *testing.T, kind Kind, profs []workload.Profile, opt CMPOptions, target uint64) *CMPSystem {
	t.Helper()
	sys, err := BuildCMP(kind, profs, opt)
	if err != nil {
		t.Fatal(err)
	}
	sys.Prewarm()
	cap := 400*target + 100_000
	for sys.MinCommitted() < target {
		if sys.Kernel.Cycle() > cap {
			t.Fatalf("%s: stalled at %d cycles, min committed %d/%d",
				sys.Name, sys.Kernel.Cycle(), sys.MinCommitted(), target)
		}
		sys.Run(1024)
	}
	return sys
}

func TestCMPAllKindsMakeProgress(t *testing.T) {
	profs := mixProfiles(t, "403.gcc", "470.lbm")
	for _, kind := range []Kind{Conventional, LNUCAL3, DNUCAOnly, LNUCADNUCA} {
		sys := runCMP(t, kind, profs, CMPOptions{Seed: 1}, 4_000)
		set := sys.Collect()
		for i := range profs {
			if got := set.Counter(fmt.Sprintf("c%d.core.committed", i)); got < 4_000 {
				t.Errorf("%s: core %d committed %d", sys.Name, i, got)
			}
		}
		// Both cores must actually reach the shared level.
		for i := range profs {
			if set.Counter(fmt.Sprintf("arb.grants.c%d", i)) == 0 {
				t.Errorf("%s: core %d never used the shared LLC", sys.Name, i)
			}
		}
		if err := sys.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", sys.Name, err)
		}
	}
}

// cmpSignature runs a 4-core mix and returns the full stats fingerprint.
func cmpSignature(t *testing.T, shuffle uint64) (*stats.Set, uint64) {
	profs := []workload.Profile{}
	for _, n := range []string{"403.gcc", "429.mcf", "470.lbm", "482.sphinx3"} {
		p, _ := workload.ByName(n)
		profs = append(profs, p)
	}
	sys, err := BuildCMP(LNUCAL3, profs, CMPOptions{Seed: 7, ShuffleRegistration: shuffle})
	if err != nil {
		t.Fatal(err)
	}
	sys.Prewarm()
	for sys.MinCommitted() < 3_000 {
		if sys.Kernel.Cycle() > 2_000_000 {
			t.Fatal("stalled")
		}
		sys.Run(1024)
	}
	// Land every variant on the same cycle so fingerprints are comparable.
	extra := 200_000 - sys.Kernel.Cycle()
	if extra > 0 {
		sys.Run(extra)
	}
	return sys.Collect(), sys.Kernel.Cycle()
}

// TestCMPDeterministicAcrossRegistrationOrders: a 4-core mix of distinct
// benchmarks must produce bit-identical statistics across repeated runs
// and across component registration orders (the two-phase kernel
// discipline extended over the arbiter and the shared LLC).
func TestCMPDeterministicAcrossRegistrationOrders(t *testing.T) {
	refSet, refCycle := cmpSignature(t, 0)
	for _, shuffle := range []uint64{0, 3, 99} {
		set, cycle := cmpSignature(t, shuffle)
		if cycle != refCycle {
			t.Fatalf("shuffle %d: %d cycles, want %d", shuffle, cycle, refCycle)
		}
		if got, want := set.String(), refSet.String(); got != want {
			t.Fatalf("shuffle %d: stats diverge from reference:\n got: %.400s\nwant: %.400s", shuffle, got, want)
		}
	}
}

// TestCMPCoresAreIsolated: same benchmark on both cores — disjoint
// address spaces mean each core warms and misses on its own data, so the
// shared-memory traffic is roughly doubled relative to one core.
func TestCMPCoresAreIsolated(t *testing.T) {
	prof, _ := workload.ByName("429.mcf")
	solo := runCMP(t, LNUCAL3, []workload.Profile{prof}, CMPOptions{Seed: 3}, 4_000)
	duo := runCMP(t, LNUCAL3, []workload.Profile{prof, prof}, CMPOptions{Seed: 3}, 4_000)

	soloReads := solo.Collect().Counter("mem.reads")
	duoReads := duo.Collect().Counter("mem.reads")
	if duoReads < soloReads+soloReads/2 {
		t.Fatalf("two isolated copies read %d blocks vs %d solo — address spaces overlap?", duoReads, soloReads)
	}
	// Distinct seeds per core: identical benchmarks must not run in
	// lockstep.
	c0 := duo.Cores[0].Committed
	c1 := duo.Cores[1].Committed
	if c0 == c1 && duo.Cores[0].LoadsIssued == duo.Cores[1].LoadsIssued {
		t.Fatalf("cores in lockstep: committed %d/%d", c0, c1)
	}
}

// TestCMPContentionSlowsCores: under a shared single-ported LLC, adding
// streaming neighbors must cost an LLC-heavy core cycles (IPC drops
// versus running the same core count at the same budget alone).
func TestCMPContentionSlowsCores(t *testing.T) {
	prof, _ := workload.ByName("429.mcf") // LLC-heavy pointer chaser
	solo := runCMP(t, Conventional, []workload.Profile{prof}, CMPOptions{Seed: 5}, 6_000)
	crowd := runCMP(t, Conventional,
		mixProfiles(t, "429.mcf", "470.lbm", "462.libquantum", "433.milc"),
		CMPOptions{Seed: 5}, 6_000)

	soloIPC := float64(solo.Cores[0].Committed) / float64(solo.Kernel.Cycle())
	crowdIPC := float64(crowd.Cores[0].Committed) / float64(crowd.Kernel.Cycle())
	if crowdIPC >= soloIPC {
		t.Fatalf("mcf IPC alone %.3f vs crowded %.3f — no contention modeled?", soloIPC, crowdIPC)
	}
	set := crowd.Collect()
	var conflicts uint64
	for i := 0; i < 4; i++ {
		conflicts += set.Counter(fmt.Sprintf("arb.conflicts.c%d", i))
	}
	if conflicts == 0 {
		t.Fatal("four streaming cores produced zero arbiter conflicts")
	}
}

func TestCMPRejectsBadConfigs(t *testing.T) {
	prof, _ := workload.ByName("403.gcc")
	if _, err := BuildCMP(LNUCAL3, nil, CMPOptions{}); err == nil {
		t.Fatal("0 cores accepted")
	}
	nine := make([]workload.Profile, 9)
	for i := range nine {
		nine[i] = prof
	}
	if _, err := BuildCMP(LNUCAL3, nine, CMPOptions{}); err == nil {
		t.Fatal("9 cores accepted")
	}
	if _, err := BuildCMP(LNUCAL3, []workload.Profile{prof}, CMPOptions{LNUCALevels: 9}); err == nil {
		t.Fatal("9 levels accepted")
	}
}
