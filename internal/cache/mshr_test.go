package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestMSHRAllocateLookupFree(t *testing.T) {
	f := NewMSHRFile(4, 4)
	m := f.Allocate(0x100, Target{ReqID: 1, Kind: mem.Read})
	if m == nil {
		t.Fatal("allocate failed on empty file")
	}
	if f.Lookup(0x100) != m {
		t.Fatal("lookup did not find entry")
	}
	if f.Lookup(0x200) != nil {
		t.Fatal("lookup found ghost entry")
	}
	targets := f.Free(0x100)
	if len(targets) != 1 || targets[0].ReqID != 1 {
		t.Fatalf("Free returned %+v", targets)
	}
	if f.Lookup(0x100) != nil {
		t.Fatal("entry survived Free")
	}
	if f.Free(0x100) != nil {
		t.Fatal("double Free should return nil")
	}
}

func TestMSHRCapacity(t *testing.T) {
	f := NewMSHRFile(2, 4)
	f.Allocate(0x100, Target{ReqID: 1})
	f.Allocate(0x200, Target{ReqID: 2})
	if !f.Full() {
		t.Fatal("file should be full")
	}
	if f.Allocate(0x300, Target{ReqID: 3}) != nil {
		t.Fatal("allocation beyond capacity should fail")
	}
	if f.FullStalls != 1 {
		t.Fatalf("FullStalls = %d, want 1", f.FullStalls)
	}
}

func TestMSHRSecondaryMergeLimit(t *testing.T) {
	// Table I: 4 secondary misses per entry.
	f := NewMSHRFile(16, 4)
	m := f.Allocate(0x100, Target{ReqID: 1})
	for i := 0; i < 4; i++ {
		if !f.Merge(m, Target{ReqID: uint64(i + 2)}) {
			t.Fatalf("merge %d rejected, want 4 secondaries allowed", i)
		}
	}
	if f.Merge(m, Target{ReqID: 99}) {
		t.Fatal("fifth secondary merge should be rejected")
	}
	if f.Secondary != 4 || f.MergeRejects != 1 {
		t.Fatalf("Secondary=%d MergeRejects=%d", f.Secondary, f.MergeRejects)
	}
	targets := f.Free(0x100)
	if len(targets) != 5 {
		t.Fatalf("Free returned %d targets, want 5", len(targets))
	}
	// Order of targets must be arrival order.
	for i, tgt := range targets {
		if tgt.ReqID != uint64(i+1) {
			t.Fatalf("target %d has ReqID %d", i, tgt.ReqID)
		}
	}
}

func TestMSHRPendingIssue(t *testing.T) {
	f := NewMSHRFile(4, 4)
	a := f.Allocate(0x100, Target{ReqID: 1})
	b := f.Allocate(0x200, Target{ReqID: 2})
	a.SentDown = true
	pend := f.PendingIssue()
	if len(pend) != 1 || pend[0] != b {
		t.Fatalf("PendingIssue = %v", pend)
	}
}

func TestMSHRDegenerateSizes(t *testing.T) {
	f := NewMSHRFile(0, -1)
	if f.Allocate(0x1, Target{}) == nil {
		t.Fatal("clamped file should allow one entry")
	}
	m := f.Lookup(0x1)
	if f.Merge(m, Target{}) {
		t.Fatal("zero secondary limit should reject merges")
	}
}

// Property: entries never exceed capacity and Free always returns exactly
// the targets that were merged.
func TestMSHRInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		file := NewMSHRFile(4, 2)
		want := map[mem.Addr]int{}
		for _, op := range ops {
			line := mem.Addr(op & 0x7)
			if m := file.Lookup(line); m != nil {
				if file.Merge(m, Target{}) {
					want[line]++
				}
			} else if file.Allocate(line, Target{}) != nil {
				want[line] = 1
			}
			if file.Len() > 4 {
				return false
			}
		}
		for line, n := range want {
			got := file.Free(line)
			if len(got) != n {
				return false
			}
		}
		return file.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
