package cache

import "repro/internal/mem"

// WBEntry is one pending write in a write buffer.
type WBEntry struct {
	Line mem.Addr
	// Kind distinguishes write-through stores (mem.Write) from evicted
	// dirty blocks (mem.Writeback); both coalesce by line.
	Kind mem.Kind
}

// WriteBuffer is a bounded coalescing write buffer. Stores to the same
// block merge into one entry, the behaviour that makes write-through L1
// caches viable (Table I gives 32-entry write buffers at L2 and L3).
type WriteBuffer struct {
	entries []WBEntry
	max     int

	// Stats
	Coalesced, Inserted, FullRejects uint64
}

// NewWriteBuffer builds a buffer with max entries.
func NewWriteBuffer(max int) *WriteBuffer {
	if max <= 0 {
		max = 1
	}
	return &WriteBuffer{max: max}
}

// Add inserts a write for line, coalescing with an existing entry of the
// same line. It reports false when the buffer is full.
func (w *WriteBuffer) Add(line mem.Addr, kind mem.Kind) bool {
	for i := range w.entries {
		if w.entries[i].Line == line {
			// A writeback carries the whole dirty block; it subsumes a
			// pending store, so keep the stronger kind.
			if kind == mem.Writeback {
				w.entries[i].Kind = mem.Writeback
			}
			w.Coalesced++
			return true
		}
	}
	if len(w.entries) >= w.max {
		w.FullRejects++
		return false
	}
	//lnuca:allow(hotalloc) entries grow to the buffer's fixed max, then reuse capacity
	w.entries = append(w.entries, WBEntry{Line: line, Kind: kind})
	w.Inserted++
	return true
}

// Pop removes and returns the oldest entry. The shift keeps the (small,
// bounded) backing array reusable instead of leaking front capacity.
func (w *WriteBuffer) Pop() (WBEntry, bool) {
	if len(w.entries) == 0 {
		return WBEntry{}, false
	}
	e := w.entries[0]
	copy(w.entries, w.entries[1:])
	w.entries = w.entries[:len(w.entries)-1]
	return e, true
}

// Peek returns the oldest entry without removing it.
func (w *WriteBuffer) Peek() (WBEntry, bool) {
	if len(w.entries) == 0 {
		return WBEntry{}, false
	}
	return w.entries[0], true
}

// Contains reports whether a write for line is pending, so loads can be
// answered from the buffer (a simplified store-forwarding check).
func (w *WriteBuffer) Contains(line mem.Addr) bool {
	for i := range w.entries {
		if w.entries[i].Line == line {
			return true
		}
	}
	return false
}

// Len returns the number of pending writes.
func (w *WriteBuffer) Len() int { return len(w.entries) }

// Full reports whether another distinct line cannot be accepted.
func (w *WriteBuffer) Full() bool { return len(w.entries) >= w.max }
