package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestWriteBufferCoalescing(t *testing.T) {
	w := NewWriteBuffer(4)
	if !w.Add(0x100, mem.Write) {
		t.Fatal("add to empty buffer failed")
	}
	if !w.Add(0x100, mem.Write) {
		t.Fatal("coalescing add failed")
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (coalesced)", w.Len())
	}
	if w.Coalesced != 1 || w.Inserted != 1 {
		t.Fatalf("Coalesced=%d Inserted=%d", w.Coalesced, w.Inserted)
	}
}

func TestWriteBufferWritebackSubsumesStore(t *testing.T) {
	w := NewWriteBuffer(4)
	w.Add(0x100, mem.Write)
	w.Add(0x100, mem.Writeback)
	e, ok := w.Pop()
	if !ok || e.Kind != mem.Writeback {
		t.Fatalf("entry = %+v, want writeback kind", e)
	}
}

func TestWriteBufferCapacity(t *testing.T) {
	w := NewWriteBuffer(2)
	w.Add(0x100, mem.Write)
	w.Add(0x200, mem.Write)
	if !w.Full() {
		t.Fatal("buffer should be full")
	}
	if w.Add(0x300, mem.Write) {
		t.Fatal("add beyond capacity should fail")
	}
	if !w.Add(0x100, mem.Write) {
		t.Fatal("coalescing into a full buffer must still succeed")
	}
	if w.FullRejects != 1 {
		t.Fatalf("FullRejects = %d, want 1", w.FullRejects)
	}
}

func TestWriteBufferFIFO(t *testing.T) {
	w := NewWriteBuffer(8)
	lines := []mem.Addr{0x100, 0x200, 0x300}
	for _, l := range lines {
		w.Add(l, mem.Write)
	}
	for _, want := range lines {
		e, ok := w.Pop()
		if !ok || e.Line != want {
			t.Fatalf("Pop = %+v, want line %#x", e, uint64(want))
		}
	}
	if _, ok := w.Pop(); ok {
		t.Fatal("Pop on empty should fail")
	}
}

func TestWriteBufferContainsAndPeek(t *testing.T) {
	w := NewWriteBuffer(4)
	if _, ok := w.Peek(); ok {
		t.Fatal("Peek on empty should fail")
	}
	w.Add(0x100, mem.Write)
	if !w.Contains(0x100) || w.Contains(0x200) {
		t.Fatal("Contains wrong")
	}
	e, ok := w.Peek()
	if !ok || e.Line != 0x100 || w.Len() != 1 {
		t.Fatal("Peek must not remove")
	}
}

// Property: Len never exceeds capacity; distinct lines in the buffer are
// unique (coalescing invariant).
func TestWriteBufferInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		w := NewWriteBuffer(4)
		for _, op := range ops {
			line := mem.Addr(op & 0x7)
			if op&0x80 != 0 {
				w.Pop()
			} else {
				w.Add(line, mem.Write)
			}
			if w.Len() > 4 {
				return false
			}
			seen := map[mem.Addr]bool{}
			for i := 0; i < w.Len(); i++ {
				e := w.entries[i]
				if seen[e.Line] {
					return false
				}
				seen[e.Line] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWriteBufferDegenerateCapacity(t *testing.T) {
	w := NewWriteBuffer(0)
	if !w.Add(0x1, mem.Write) {
		t.Fatal("clamped buffer should hold one entry")
	}
}
