package cache

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ctrlHarness wires driver -> Controller -> MainMemory.
type ctrlHarness struct {
	k    *sim.Kernel
	up   *mem.Port
	down *mem.Port
	c    *Controller
	mm   *mem.MainMemory
	ids  mem.IDSource

	got map[uint64]sim.Cycle // reqID -> completion cycle
}

func newCtrlHarness(t *testing.T, cfg ControllerConfig) *ctrlHarness {
	t.Helper()
	h := &ctrlHarness{
		up:   mem.NewPort(16, 16),
		down: mem.NewPort(16, 16),
		got:  map[uint64]sim.Cycle{},
	}
	h.c = NewController(cfg, h.up, h.down, &h.ids)
	h.mm = mem.NewMainMemory("mem", mem.MainMemoryConfig{
		FirstChunkCycles: 50,
		InterChunkCycles: 4,
		ChunkBytes:       16,
		BlockBytes:       cfg.Bank.BlockBytes,
	}, h.down)
	h.k = sim.NewKernel()
	h.k.MustRegister(h)
	h.k.MustRegister(h.c)
	h.k.MustRegister(h.mm)
	return h
}

func (h *ctrlHarness) Name() string { return "driver" }
func (h *ctrlHarness) Eval(k *sim.Kernel) {
	for {
		r, ok := h.up.Up.Pop()
		if !ok {
			break
		}
		h.got[r.ID] = k.Cycle()
	}
}
func (h *ctrlHarness) Commit(k *sim.Kernel) { h.up.Down.Tick() }

func (h *ctrlHarness) read(id uint64, a mem.Addr) {
	h.up.Down.Push(&mem.Req{ID: id, Addr: a, Kind: mem.Read, Issued: h.k.Cycle()})
}

func (h *ctrlHarness) write(id uint64, a mem.Addr) {
	h.up.Down.Push(&mem.Req{ID: id, Addr: a, Kind: mem.Write, Issued: h.k.Cycle()})
}

func (h *ctrlHarness) runUntil(t *testing.T, id uint64, max int) sim.Cycle {
	t.Helper()
	for i := 0; i < max; i++ {
		if c, ok := h.got[id]; ok {
			return c
		}
		h.k.Step()
	}
	t.Fatalf("request %d never completed (after %d cycles)", id, max)
	return 0
}

func l2Config() ControllerConfig {
	return ControllerConfig{
		Name:             "L2",
		Bank:             BankConfig{SizeBytes: 256 << 10, Ways: 8, BlockBytes: 64},
		CompletionCycles: 4,
		InitiationCycles: 2,
		Ports:            1,
		Policy:           CopyBack,
		Mode:             Serial,
		MSHREntries:      16,
		MSHRSecondary:    4,
		WriteBufEntries:  32,
	}
}

func TestControllerMissThenHit(t *testing.T) {
	h := newCtrlHarness(t, l2Config())
	h.read(1, 0x1000)
	missDone := h.runUntil(t, 1, 500)
	// Miss must cost at least the memory first-chunk latency.
	if missDone < 50 {
		t.Fatalf("miss completed at %d, faster than memory latency", missDone)
	}
	start := h.k.Cycle()
	h.read(2, 0x1000)
	hitDone := h.runUntil(t, 2, 100)
	lat := hitDone - start
	// Request crosses the channel (1), completes in 4, response crosses
	// back (1): ~6 cycles.
	if lat < 4 || lat > 8 {
		t.Fatalf("hit latency = %d, want ~6", lat)
	}
	if h.c.ReadHits != 1 || h.c.ReadMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1,1", h.c.ReadHits, h.c.ReadMisses)
	}
}

func TestControllerSecondaryMissMerging(t *testing.T) {
	h := newCtrlHarness(t, l2Config())
	h.read(1, 0x2000)
	h.k.Step()
	h.read(2, 0x2000) // same block: secondary miss
	h.read(3, 0x2040) // different block: second primary
	h.runUntil(t, 1, 500)
	h.runUntil(t, 2, 500)
	h.runUntil(t, 3, 500)
	if h.mm.Reads != 2 {
		t.Fatalf("memory reads = %d, want 2 (secondary merged)", h.mm.Reads)
	}
	if h.c.ReadMisses != 3 {
		t.Fatalf("read misses = %d, want 3", h.c.ReadMisses)
	}
}

func TestControllerWriteAllocateAndWriteback(t *testing.T) {
	h := newCtrlHarness(t, l2Config())
	// Write misses allocate in a copy-back cache.
	h.write(0, 0x3000)
	for i := 0; i < 300; i++ {
		h.k.Step()
	}
	if !h.c.Bank().Probe(0x3000) {
		t.Fatal("write-allocate did not fill the block")
	}
	if !h.c.Bank().IsDirty(0x3000) {
		t.Fatal("allocated block should be dirty")
	}
	// Evict it by filling the set: 8 ways, set stride = 512 sets * 64B.
	stride := mem.Addr(512 * 64)
	for i := 1; i <= 9; i++ {
		h.read(uint64(10+i), 0x3000+mem.Addr(i)*stride)
		for j := 0; j < 300; j++ {
			h.k.Step()
		}
	}
	if h.c.Bank().Probe(0x3000) {
		t.Fatal("dirty block was never evicted; test setup wrong")
	}
	if h.mm.Writebacks == 0 {
		t.Fatal("dirty eviction must produce a writeback to memory")
	}
}

func TestControllerWriteThroughForwards(t *testing.T) {
	cfg := l2Config()
	cfg.Name = "L1"
	cfg.Policy = WriteThrough
	cfg.Bank = BankConfig{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 32}
	h := newCtrlHarness(t, cfg)
	// Populate the block, then store to it.
	h.read(1, 0x4000)
	h.runUntil(t, 1, 500)
	h.write(0, 0x4000)
	for i := 0; i < 200; i++ {
		h.k.Step()
	}
	// The store must have been forwarded to memory (write-through).
	if h.mm.Writebacks+h.mm.Reads < 2 {
		t.Fatalf("store not forwarded: mem reads=%d writebacks=%d",
			h.mm.Reads, h.mm.Writebacks)
	}
	if h.c.Bank().IsDirty(0x4000) {
		t.Fatal("write-through cache must not hold dirty blocks after forwarding")
	}
}

func TestControllerReadAfterWriteForwardsFromBuffer(t *testing.T) {
	h := newCtrlHarness(t, l2Config())
	h.write(0, 0x5000)
	h.read(7, 0x5000)
	done := h.runUntil(t, 7, 500)
	_ = done
	if h.c.WBufForwards == 0 && h.c.ReadHits == 0 {
		t.Fatal("read after write should hit via buffer or allocated block")
	}
}

func TestControllerWritebackBypassOnMiss(t *testing.T) {
	h := newCtrlHarness(t, l2Config())
	h.up.Down.Push(&mem.Req{ID: 0, Addr: 0x6000, Kind: mem.Writeback})
	for i := 0; i < 300; i++ {
		h.k.Step()
	}
	if h.mm.Writebacks != 1 {
		t.Fatalf("writeback miss should forward downstream, got %d", h.mm.Writebacks)
	}
	if h.c.Bank().Probe(0x6000) {
		t.Fatal("writeback miss must not allocate")
	}
}

func TestControllerWritebackHitMarksDirty(t *testing.T) {
	h := newCtrlHarness(t, l2Config())
	h.read(1, 0x7000)
	h.runUntil(t, 1, 500)
	h.up.Down.Push(&mem.Req{ID: 0, Addr: 0x7000, Kind: mem.Writeback})
	for i := 0; i < 50; i++ {
		h.k.Step()
	}
	if !h.c.Bank().IsDirty(0x7000) {
		t.Fatal("writeback hit should mark the block dirty")
	}
}

func TestControllerInitiationIntervalThrottles(t *testing.T) {
	cfg := l2Config()
	cfg.InitiationCycles = 4
	h := newCtrlHarness(t, cfg)
	// Two hits to the same block, issued back to back: the second must be
	// delayed by the initiation interval.
	h.read(1, 0x8000)
	h.runUntil(t, 1, 500)
	h.read(2, 0x8000)
	h.read(3, 0x8040) // different set, still same single port
	d2 := h.runUntil(t, 2, 100)
	d3 := h.runUntil(t, 3, 100)
	if d3 < d2+4 {
		t.Fatalf("second access at %d, first at %d: initiation interval not enforced", d3, d2)
	}
}

func TestControllerCollect(t *testing.T) {
	h := newCtrlHarness(t, l2Config())
	h.read(1, 0x9000)
	h.runUntil(t, 1, 500)
	s := stats.NewSet()
	h.c.Collect("l2", s)
	if s.Counter("l2.reads") != 1 || s.Counter("l2.read_misses") != 1 {
		t.Fatalf("Collect missing counters: %s", s)
	}
}

func TestControllerManyRandomRequestsDrain(t *testing.T) {
	h := newCtrlHarness(t, l2Config())
	rng := sim.NewRand(42)
	issued := 0
	for i := 0; i < 2000; i++ {
		if issued < 200 && h.up.Down.CanPush() && rng.Bool(0.3) {
			issued++
			h.read(uint64(issued), mem.Addr(rng.Intn(1<<16))&^0x3F)
		}
		h.k.Step()
	}
	for i := 0; i < 2000 && len(h.got) < issued; i++ {
		h.k.Step()
	}
	if len(h.got) != issued {
		t.Fatalf("completed %d of %d reads", len(h.got), issued)
	}
	if h.c.MSHROccupancy() != 0 {
		t.Fatalf("MSHRs leaked: %d live", h.c.MSHROccupancy())
	}
}
