package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func mkBank(t *testing.T, size, ways, block int) *Bank {
	t.Helper()
	return NewBank(BankConfig{SizeBytes: size, Ways: ways, BlockBytes: block})
}

func TestBankConfigValidate(t *testing.T) {
	good := BankConfig{SizeBytes: 8192, Ways: 2, BlockBytes: 32}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if good.NumSets() != 128 {
		t.Fatalf("NumSets = %d, want 128", good.NumSets())
	}
	bad := []BankConfig{
		{SizeBytes: 0, Ways: 2, BlockBytes: 32},
		{SizeBytes: 8192, Ways: 0, BlockBytes: 32},
		{SizeBytes: 8192, Ways: 2, BlockBytes: 33},
		{SizeBytes: 1000, Ways: 2, BlockBytes: 32},
		{SizeBytes: 8192, Ways: 3, BlockBytes: 32}, // 85.33 sets
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", b)
		}
	}
}

func TestBankFillAndProbe(t *testing.T) {
	b := mkBank(t, 8192, 2, 32)
	addr := mem.Addr(0x1000)
	if b.Probe(addr) {
		t.Fatal("empty bank should miss")
	}
	if _, ev := b.Fill(addr, false); ev {
		t.Fatal("fill into empty set should not evict")
	}
	if !b.Probe(addr) || !b.Probe(addr+31) {
		t.Fatal("probe should hit anywhere within the block")
	}
	if b.Probe(addr + 32) {
		t.Fatal("neighbouring block should miss")
	}
	if b.Occupancy() != 1 {
		t.Fatalf("Occupancy = %d, want 1", b.Occupancy())
	}
}

func TestBankLRUEviction(t *testing.T) {
	b := mkBank(t, 8192, 2, 32)
	// Three blocks mapping to the same set (stride = numSets*block = 4096).
	a0, a1, a2 := mem.Addr(0x0), mem.Addr(0x1000), mem.Addr(0x2000)
	b.Fill(a0, false)
	b.Fill(a1, false)
	// Touch a0 so a1 becomes LRU.
	if !b.Access(a0, false) {
		t.Fatal("a0 should hit")
	}
	v, ev := b.Fill(a2, false)
	if !ev || v.Addr != a1 {
		t.Fatalf("evicted %+v, want a1 (LRU)", v)
	}
	if !b.Probe(a0) || !b.Probe(a2) || b.Probe(a1) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestBankDirtyVictim(t *testing.T) {
	b := mkBank(t, 8192, 2, 32)
	a0, a1, a2 := mem.Addr(0x0), mem.Addr(0x1000), mem.Addr(0x2000)
	b.Fill(a0, false)
	b.Access(a0, true) // dirty it
	b.Fill(a1, false)
	b.Access(a1, false) // a0 becomes LRU
	v, ev := b.Fill(a2, false)
	if !ev || v.Addr != a0 || !v.Dirty {
		t.Fatalf("victim = %+v, want dirty a0", v)
	}
}

func TestBankRefillExistingBlock(t *testing.T) {
	b := mkBank(t, 8192, 2, 32)
	a := mem.Addr(0x40)
	b.Fill(a, false)
	if _, ev := b.Fill(a, true); ev {
		t.Fatal("refill must not evict")
	}
	if b.Occupancy() != 1 {
		t.Fatalf("refill duplicated the block: occupancy %d", b.Occupancy())
	}
	if !b.IsDirty(a) {
		t.Fatal("refill with dirty must OR the dirty bit")
	}
}

func TestBankInvalidate(t *testing.T) {
	b := mkBank(t, 8192, 2, 32)
	a := mem.Addr(0x80)
	b.Fill(a, true)
	dirty, present := b.Invalidate(a)
	if !present || !dirty {
		t.Fatalf("Invalidate = dirty=%v present=%v, want true,true", dirty, present)
	}
	if b.Probe(a) || b.Occupancy() != 0 {
		t.Fatal("block still present after invalidate")
	}
	if _, present := b.Invalidate(a); present {
		t.Fatal("double invalidate should report absent")
	}
}

func TestBankHasSpaceAndVictimFor(t *testing.T) {
	b := mkBank(t, 8192, 2, 32)
	a0, a1 := mem.Addr(0x0), mem.Addr(0x1000)
	if !b.HasSpace(a0) {
		t.Fatal("empty set should have space")
	}
	if _, ok := b.VictimFor(a0); ok {
		t.Fatal("no victim needed while space remains")
	}
	b.Fill(a0, false)
	b.Fill(a1, false)
	if b.HasSpace(a0) {
		t.Fatal("full set should have no space")
	}
	// a0 was filled first and never touched since, so it is the LRU.
	v, ok := b.VictimFor(a0)
	if !ok || v.Addr != a0 {
		t.Fatalf("VictimFor = %+v,%v; want a0 (LRU)", v, ok)
	}
	// VictimFor must not modify state.
	if !b.Probe(a0) || !b.Probe(a1) {
		t.Fatal("VictimFor modified the set")
	}
}

func TestBankExtractVictim(t *testing.T) {
	b := mkBank(t, 8192, 2, 32)
	a0, a1 := mem.Addr(0x0), mem.Addr(0x1000)
	b.Fill(a0, false)
	b.Fill(a1, false)
	v, ok := b.ExtractVictim(a0)
	if !ok || v.Addr != a0 {
		t.Fatalf("ExtractVictim = %+v, want LRU a0", v)
	}
	if b.Probe(a0) {
		t.Fatal("extracted victim still present")
	}
	if b.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", b.Occupancy())
	}
}

func TestBankExtractLRUAny(t *testing.T) {
	b := mkBank(t, 8192, 2, 32)
	if _, ok := b.ExtractLRUAny(); ok {
		t.Fatal("empty bank should have nothing to extract")
	}
	b.Fill(0x40, true)
	v, ok := b.ExtractLRUAny()
	if !ok || v.Addr != 0x40 || !v.Dirty {
		t.Fatalf("ExtractLRUAny = %+v,%v", v, ok)
	}
	if b.Occupancy() != 0 {
		t.Fatal("bank should be empty")
	}
}

func TestBankLinesEnumeration(t *testing.T) {
	b := mkBank(t, 8192, 2, 32)
	want := map[mem.Addr]bool{0x0: true, 0x20: true, 0x1000: true}
	for a := range want {
		b.Fill(a, false)
	}
	lines := b.Lines(nil)
	if len(lines) != len(want) {
		t.Fatalf("Lines returned %d entries, want %d", len(lines), len(want))
	}
	for _, l := range lines {
		if !want[l] {
			t.Errorf("unexpected line %#x", uint64(l))
		}
	}
}

// Property: occupancy always equals the number of enumerated lines, and
// never exceeds capacity, under any operation sequence.
func TestBankOccupancyInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewBank(BankConfig{SizeBytes: 1024, Ways: 2, BlockBytes: 32})
		for _, op := range ops {
			addr := mem.Addr(op&0x3FF) << 5
			switch op >> 14 {
			case 0:
				b.Fill(addr, op&1 == 1)
			case 1:
				b.Access(addr, op&1 == 1)
			case 2:
				b.Invalidate(addr)
			case 3:
				b.ExtractVictim(addr)
			}
			if b.Occupancy() != len(b.Lines(nil)) {
				return false
			}
			if b.Occupancy() > b.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a fill is always followed by a successful probe of that block.
func TestBankFillThenProbeProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		b := NewBank(BankConfig{SizeBytes: 2048, Ways: 4, BlockBytes: 64})
		for _, raw := range addrs {
			a := mem.Addr(raw)
			b.Fill(a, false)
			if !b.Probe(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankCapacity(t *testing.T) {
	b := mkBank(t, 8192, 2, 32)
	if b.Capacity() != 256 {
		t.Fatalf("Capacity = %d, want 256", b.Capacity())
	}
	// Fill beyond capacity: occupancy must saturate.
	for i := 0; i < 512; i++ {
		b.Fill(mem.Addr(i*32), false)
	}
	if b.Occupancy() != 256 {
		t.Fatalf("Occupancy = %d, want 256", b.Occupancy())
	}
}
