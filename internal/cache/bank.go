// Package cache implements the building blocks every cache level of the
// simulated hierarchy is made of: a set-associative bank with true LRU, a
// miss status holding register (MSHR) file with secondary-miss merging, a
// coalescing write buffer, and a generic timed controller used for the
// conventional L2 and L3 levels of Table I.
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// BankConfig describes the geometry of one SRAM bank.
type BankConfig struct {
	SizeBytes  int
	Ways       int
	BlockBytes int
}

// NumSets returns the number of sets implied by the geometry.
func (c BankConfig) NumSets() int {
	return c.SizeBytes / (c.Ways * c.BlockBytes)
}

// Validate reports whether the geometry is self-consistent.
func (c BankConfig) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache: block size %d not a power of two", c.BlockBytes)
	}
	sets := c.NumSets()
	if sets <= 0 || sets*c.Ways*c.BlockBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not divisible into %d-way sets of %d-byte blocks",
			c.SizeBytes, c.Ways, c.BlockBytes)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Victim describes a block displaced by a fill.
type Victim struct {
	Addr  mem.Addr
	Dirty bool
}

// way holds one block frame.
type way struct {
	line  mem.Addr // block-aligned address
	valid bool
	dirty bool
}

// Bank is a set-associative cache array with true LRU replacement. It is a
// pure state container: all timing lives in the controllers that use it.
// Within each set, ways are kept ordered most-recently-used first, which
// makes LRU exact and cheap at simulation associativities.
type Bank struct {
	cfg     BankConfig
	sets    [][]way
	numSets int
	occ     int
}

// NewBank builds a bank; it panics on invalid geometry (a wiring bug).
func NewBank(cfg BankConfig) *Bank {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.NumSets()
	sets := make([][]way, n)
	backing := make([]way, n*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Bank{cfg: cfg, sets: sets, numSets: n}
}

// Config returns the bank geometry.
func (b *Bank) Config() BankConfig { return b.cfg }

// setIndex maps an address to its set.
func (b *Bank) setIndex(a mem.Addr) int {
	return int((uint64(a) / uint64(b.cfg.BlockBytes)) % uint64(b.numSets))
}

// Line returns the block frame address of a in this bank's geometry.
func (b *Bank) Line(a mem.Addr) mem.Addr { return a.Line(b.cfg.BlockBytes) }

// findWay returns the position of the line within its set, or -1.
func (b *Bank) findWay(set []way, line mem.Addr) int {
	for i := range set {
		if set[i].valid && set[i].line == line {
			return i
		}
	}
	return -1
}

// Probe reports whether the block containing a is present, without
// touching replacement state (a tag-array-only lookup).
func (b *Bank) Probe(a mem.Addr) bool {
	line := b.Line(a)
	return b.findWay(b.sets[b.setIndex(a)], line) >= 0
}

// Access performs a demand access. On a hit the block becomes MRU; when
// write is set, the block is marked dirty. It reports whether it hit.
func (b *Bank) Access(a mem.Addr, write bool) bool {
	line := b.Line(a)
	set := b.sets[b.setIndex(a)]
	i := b.findWay(set, line)
	if i < 0 {
		return false
	}
	entry := set[i]
	if write {
		entry.dirty = true
	}
	copy(set[1:i+1], set[0:i])
	set[0] = entry
	return true
}

// Fill inserts the block containing a as MRU. If the set is full the LRU
// block is evicted and returned. Filling a block that is already present
// refreshes it (and ORs dirty) instead of duplicating it.
func (b *Bank) Fill(a mem.Addr, dirty bool) (Victim, bool) {
	line := b.Line(a)
	si := b.setIndex(a)
	set := b.sets[si]
	if i := b.findWay(set, line); i >= 0 {
		entry := set[i]
		entry.dirty = entry.dirty || dirty
		copy(set[1:i+1], set[0:i])
		set[0] = entry
		return Victim{}, false
	}
	// Look for an invalid way.
	victimIdx := -1
	for i := range set {
		if !set[i].valid {
			victimIdx = i
			break
		}
	}
	var evicted Victim
	hasVictim := false
	if victimIdx < 0 {
		victimIdx = len(set) - 1 // true LRU
		evicted = Victim{Addr: set[victimIdx].line, Dirty: set[victimIdx].dirty}
		hasVictim = true
	} else {
		b.occ++
	}
	copy(set[1:victimIdx+1], set[0:victimIdx])
	set[0] = way{line: line, valid: true, dirty: dirty}
	return evicted, hasVictim
}

// Invalidate removes the block containing a, returning whether it was
// present and whether it was dirty. Used for content exclusion: when an
// L-NUCA tile hits, the block leaves the tile.
func (b *Bank) Invalidate(a mem.Addr) (dirty, present bool) {
	line := b.Line(a)
	si := b.setIndex(a)
	set := b.sets[si]
	i := b.findWay(set, line)
	if i < 0 {
		return false, false
	}
	dirty = set[i].dirty
	copy(set[i:], set[i+1:])
	set[len(set)-1] = way{}
	b.occ--
	return dirty, true
}

// HasSpace reports whether the set that a maps to has an invalid way.
func (b *Bank) HasSpace(a mem.Addr) bool {
	for _, w := range b.sets[b.setIndex(a)] {
		if !w.valid {
			return true
		}
	}
	return false
}

// VictimFor returns the block that a fill of a would evict, without
// performing the fill. ok is false when the set still has room.
func (b *Bank) VictimFor(a mem.Addr) (Victim, bool) {
	set := b.sets[b.setIndex(a)]
	for _, w := range set {
		if !w.valid {
			return Victim{}, false
		}
	}
	last := set[len(set)-1]
	return Victim{Addr: last.line, Dirty: last.dirty}, true
}

// ExtractVictim removes and returns the LRU block of the set that a maps
// to. ok is false when the set has a free way (nothing needs to leave).
func (b *Bank) ExtractVictim(a mem.Addr) (Victim, bool) {
	v, ok := b.VictimFor(a)
	if !ok {
		return Victim{}, false
	}
	b.Invalidate(v.Addr)
	return v, true
}

// ExtractLRUAny removes and returns the least-recently filled valid block
// scanning from set 0 — used by tiles that must surrender a block when
// their chosen set is empty. ok is false when the bank is empty.
func (b *Bank) ExtractLRUAny() (Victim, bool) {
	for si := range b.sets {
		set := b.sets[si]
		for i := len(set) - 1; i >= 0; i-- {
			if set[i].valid {
				v := Victim{Addr: set[i].line, Dirty: set[i].dirty}
				b.Invalidate(v.Addr)
				return v, true
			}
		}
	}
	return Victim{}, false
}

// Occupancy returns the number of valid blocks in the bank.
func (b *Bank) Occupancy() int { return b.occ }

// Capacity returns the total number of block frames.
func (b *Bank) Capacity() int { return b.numSets * b.cfg.Ways }

// Lines appends every valid block address to dst and returns it; used by
// invariant-checking tests.
func (b *Bank) Lines(dst []mem.Addr) []mem.Addr {
	for _, set := range b.sets {
		for _, w := range set {
			if w.valid {
				dst = append(dst, w.line)
			}
		}
	}
	return dst
}

// IsDirty reports whether the block containing a is present and dirty.
func (b *Bank) IsDirty(a mem.Addr) bool {
	line := b.Line(a)
	set := b.sets[b.setIndex(a)]
	i := b.findWay(set, line)
	return i >= 0 && set[i].dirty
}
