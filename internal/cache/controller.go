package cache

import (
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// WritePolicy selects how stores interact with the array.
type WritePolicy uint8

const (
	// WriteThrough caches propagate every store downstream (the L1 /
	// r-tile policy in Table I) and do not allocate on store misses.
	WriteThrough WritePolicy = iota
	// CopyBack caches absorb stores and write dirty victims back on
	// eviction (L2, L3, L-NUCA tiles, D-NUCA banks in Table I).
	CopyBack
)

func (p WritePolicy) String() string {
	if p == WriteThrough {
		return "write-through"
	}
	return "copy-back"
}

// AccessMode selects tag/data array sequencing; it matters for the energy
// model only (serial access reads one way of data instead of all).
type AccessMode uint8

const (
	// Parallel reads tags and all data ways concurrently (fast, hungry).
	Parallel AccessMode = iota
	// Serial reads tags first, then only the hitting data way.
	Serial
)

func (m AccessMode) String() string {
	if m == Parallel {
		return "parallel"
	}
	return "serial"
}

// ControllerConfig parameterizes a generic cache level.
type ControllerConfig struct {
	Name             string
	Bank             BankConfig
	CompletionCycles int // load-to-use hit latency contribution
	InitiationCycles int // minimum gap between successive bank accesses
	Ports            int
	Policy           WritePolicy
	Mode             AccessMode
	MSHREntries      int
	MSHRSecondary    int
	WriteBufEntries  int
	// BusCycles models the request/data transfer on the link to the
	// upper level; it is added to every response's ready time.
	BusCycles int
	// TagMissCycles models miss determination (the serial-mode tag path
	// plus request forwarding) before the downstream fetch leaves.
	TagMissCycles int
}

// Controller is a timed cache level: it owns a Bank, an MSHR file and a
// write buffer, pops requests from its upstream port and fetches misses
// through its downstream port. It implements sim.Component.
//
// Responses are produced only for Read requests; Write and Writeback
// traffic is absorbed (coalesced, applied, and forwarded as required by
// the write policy), matching how the store path of the modeled hierarchy
// retires stores at the L1 write buffer.
type Controller struct {
	cfg  ControllerConfig
	bank *Bank
	mshr *MSHRFile
	wbuf *WriteBuffer
	up   *mem.Port // upper side: we pop up.Down and push up.Up
	down *mem.Port // lower side: we push down.Down and pop down.Up
	ids  *mem.IDSource

	portFreeAt []sim.Cycle
	pending    sim.Queue[timedResp] // matured hit/fill responses awaiting delivery
	fetchQ     sim.Queue[timedReq]  // downstream fetches awaiting miss determination/channel space

	// Counters (exported for the statistics and energy models).
	Reads, ReadHits, ReadMisses  uint64
	WritesApplied, WriteHits     uint64
	Fills, WritebacksOut         uint64
	WBufForwards, BankAccesses   uint64
	StallMSHRFull, StallWBufFull uint64

	// Quiescence bookkeeping: per-cycle counter increments of a blocked
	// idle state, recorded by NextEvent and applied by SkipTo.
	skipMSHRFull, skipWBufFull, skipMergeRejects, skipWBufRejects uint64
}

type timedResp struct {
	resp  *mem.Resp
	ready sim.Cycle
}

type timedReq struct {
	req   *mem.Req
	ready sim.Cycle
}

// NewController wires a cache level between two ports. The ids source
// allocates IDs for the fetches this level originates.
func NewController(cfg ControllerConfig, up, down *mem.Port, ids *mem.IDSource) *Controller {
	if cfg.Ports <= 0 {
		cfg.Ports = 1
	}
	// CompletionCycles 0 is legal: the port channel crossings already add
	// two cycles, which is exactly the L1's 2-cycle completion.
	if cfg.CompletionCycles < 0 {
		cfg.CompletionCycles = 0
	}
	if cfg.InitiationCycles < 1 {
		cfg.InitiationCycles = 1
	}
	return &Controller{
		cfg:        cfg,
		bank:       NewBank(cfg.Bank),
		mshr:       NewMSHRFile(cfg.MSHREntries, cfg.MSHRSecondary),
		wbuf:       NewWriteBuffer(cfg.WriteBufEntries),
		up:         up,
		down:       down,
		ids:        ids,
		portFreeAt: make([]sim.Cycle, cfg.Ports),
	}
}

// Name implements sim.Component.
func (c *Controller) Name() string { return c.cfg.Name }

// Bank exposes the underlying array (tests and warmup).
func (c *Controller) Bank() *Bank { return c.bank }

// MSHROccupancy returns the number of live MSHR entries.
func (c *Controller) MSHROccupancy() int { return c.mshr.Len() }

// takePort consumes a bank port for this cycle if one is free.
func (c *Controller) takePort(now sim.Cycle) bool {
	for i := range c.portFreeAt {
		if c.portFreeAt[i] <= now {
			c.portFreeAt[i] = now + sim.Cycle(c.cfg.InitiationCycles)
			c.BankAccesses++
			return true
		}
	}
	return false
}

// Eval implements sim.Component.
func (c *Controller) Eval(k *sim.Kernel) {
	now := k.Cycle()
	c.handleFills(now)
	c.issueFetches(now)
	c.deliverResponses(now)
	c.acceptRequests(now)
	c.drainWriteBuffer(now)
}

// handleFills consumes downstream responses: fill the array, retire the
// MSHR, wake all merged requesters, and push dirty victims into the write
// buffer.
func (c *Controller) handleFills(now sim.Cycle) {
	for {
		resp, ok := c.down.Up.Peek()
		if !ok {
			break
		}
		// A fill may evict a dirty victim that needs write-buffer space,
		// and needs a bank port. Check both before committing.
		if c.wbuf.Full() {
			c.StallWBufFull++
			break
		}
		if !c.takePort(now) {
			break
		}
		c.down.Up.Pop()
		line := c.bank.Line(resp.Addr)
		targets := c.mshr.Free(line)
		dirty := false
		for _, t := range targets {
			if t.Kind == mem.Write {
				dirty = true
			}
		}
		victim, evicted := c.bank.Fill(line, dirty)
		c.Fills++
		if evicted && victim.Dirty && c.cfg.Policy == CopyBack {
			c.wbuf.Add(victim.Addr, mem.Writeback)
		}
		for _, t := range targets {
			if t.Kind == mem.Read {
				c.pending.Push(timedResp{
					//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
					resp:  &mem.Resp{ID: t.ReqID, Addr: t.Addr, Done: now},
					ready: now + sim.Cycle(c.cfg.BusCycles),
				})
			}
		}
	}
}

// issueFetches pushes queued MSHR fetches downstream once miss
// determination has elapsed and as channel space allows.
func (c *Controller) issueFetches(now sim.Cycle) {
	for c.fetchQ.Len() > 0 && c.fetchQ.Front().ready <= now && c.down.Down.CanPush() {
		r, _ := c.fetchQ.Pop()
		c.down.Down.Push(r.req)
	}
}

// deliverResponses sends matured responses upstream.
func (c *Controller) deliverResponses(now sim.Cycle) {
	for c.pending.Len() > 0 && c.pending.Front().ready <= now && c.up.Up.CanPush() {
		r, _ := c.pending.Pop()
		r.resp.Done = now
		c.up.Up.Push(r.resp)
	}
}

// acceptRequests pops upstream demand requests, bounded by ports.
func (c *Controller) acceptRequests(now sim.Cycle) {
	for {
		req, ok := c.up.Down.Peek()
		if !ok {
			return
		}
		switch req.Kind {
		case mem.Read:
			if !c.acceptRead(now, req) {
				return
			}
		case mem.Write, mem.Writeback:
			// Stores and writebacks land in the write buffer; the array
			// is updated when the buffer drains.
			if !c.wbuf.Add(c.bank.Line(req.Addr), req.Kind) {
				c.StallWBufFull++
				return
			}
		}
		c.up.Down.Pop()
	}
}

// acceptRead processes one read; it reports false when the read must stall
// (and therefore block the request queue, preserving order).
func (c *Controller) acceptRead(now sim.Cycle, req *mem.Req) bool {
	line := c.bank.Line(req.Addr)
	// Forward from a pending write: the block's data is newer here than
	// in the array or downstream.
	if c.wbuf.Contains(line) {
		c.Reads++
		c.ReadHits++
		c.WBufForwards++
		c.pending.Push(timedResp{
			//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
			resp:  &mem.Resp{ID: req.ID, Addr: req.Addr},
			ready: now + sim.Cycle(c.cfg.CompletionCycles+c.cfg.BusCycles),
		})
		return true
	}
	// A secondary miss merges without needing a bank port.
	if m := c.mshr.Lookup(line); m != nil {
		if !c.mshr.Merge(m, Target{ReqID: req.ID, Addr: req.Addr, Kind: mem.Read, Issued: req.Issued}) {
			return false
		}
		c.Reads++
		c.ReadMisses++
		return true
	}
	if c.mshr.Full() {
		c.StallMSHRFull++
		return false
	}
	if !c.takePort(now) {
		return false
	}
	c.Reads++
	if c.bank.Access(line, false) {
		c.ReadHits++
		c.pending.Push(timedResp{
			//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
			resp:  &mem.Resp{ID: req.ID, Addr: req.Addr},
			ready: now + sim.Cycle(c.cfg.CompletionCycles+c.cfg.BusCycles),
		})
		return true
	}
	c.ReadMisses++
	c.mshr.Allocate(line, Target{ReqID: req.ID, Addr: req.Addr, Kind: mem.Read, Issued: req.Issued})
	c.queueFetch(line, req.Issued, now)
	return true
}

// queueFetch originates a downstream fetch for line, delayed by the miss
// determination time.
func (c *Controller) queueFetch(line mem.Addr, issued sim.Cycle, now sim.Cycle) {
	m := c.mshr.Lookup(line)
	if m != nil {
		m.SentDown = true
	}
	c.fetchQ.Push(timedReq{
		//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
		req: &mem.Req{
			ID:     c.ids.Next(),
			Addr:   line,
			Kind:   mem.Read,
			Issued: issued,
		},
		ready: now + sim.Cycle(c.cfg.TagMissCycles),
	})
}

// drainWriteBuffer applies one buffered write per free port and cycle.
func (c *Controller) drainWriteBuffer(now sim.Cycle) {
	e, ok := c.wbuf.Peek()
	if !ok {
		return
	}
	line := e.Line
	switch {
	case c.mshr.Lookup(line) != nil:
		// The block is on its way; the fill will apply the write via the
		// MSHR target below. Merge as a write target.
		m := c.mshr.Lookup(line)
		if !c.mshr.Merge(m, Target{ReqID: 0, Addr: line, Kind: mem.Write}) {
			return // secondary limit: retry next cycle
		}
		c.wbuf.Pop()
		c.WritesApplied++
	case c.bank.Probe(line):
		if !c.takePort(now) {
			return
		}
		c.wbuf.Pop()
		// Only a copy-back cache keeps the block dirty; a write-through
		// cache updates the array and immediately forwards the store.
		c.bank.Access(line, c.cfg.Policy == CopyBack)
		c.WritesApplied++
		c.WriteHits++
		if c.cfg.Policy == WriteThrough {
			c.forwardDown(line, mem.Write)
		}
	default: // write miss
		switch {
		case e.Kind == mem.Writeback || c.cfg.Policy == WriteThrough:
			// Writeback bypass / write-through no-allocate: forward.
			if !c.down.Down.CanPush() {
				return
			}
			c.wbuf.Pop()
			kind := e.Kind
			if c.cfg.Policy == WriteThrough && kind == mem.Write {
				kind = mem.Write
			}
			c.forwardDown(line, kind)
			c.WritesApplied++
		default:
			// Copy-back write-allocate: fetch the block, mark dirty on
			// fill.
			if c.mshr.Full() {
				c.StallMSHRFull++
				return
			}
			c.wbuf.Pop()
			c.mshr.Allocate(line, Target{ReqID: 0, Addr: line, Kind: mem.Write, Issued: now})
			c.queueFetch(line, now, now)
			c.WritesApplied++
		}
	}
}

// forwardDown pushes a write or writeback downstream (space was checked or
// is checked by the caller; when full, it queues on fetchQ semantics).
func (c *Controller) forwardDown(line mem.Addr, kind mem.Kind) {
	//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
	req := &mem.Req{ID: c.ids.Next(), Addr: line, Kind: kind}
	if c.down.Down.CanPush() {
		c.down.Down.Push(req)
	} else {
		c.fetchQ.Push(timedReq{req: req})
	}
	if kind == mem.Writeback {
		c.WritebacksOut++
	}
}

// Commit implements sim.Component: publish what we pushed this cycle.
func (c *Controller) Commit(k *sim.Kernel) {
	c.up.Up.Tick()
	c.down.Down.Tick()
}

// portAvail reports whether a bank port is free at now, without
// consuming it (the pure counterpart of takePort).
func (c *Controller) portAvail(now sim.Cycle) bool {
	for _, t := range c.portFreeAt {
		if t <= now {
			return true
		}
	}
	return false
}

// minPortFree returns the earliest cycle any bank port frees.
func (c *Controller) minPortFree() sim.Cycle {
	min := c.portFreeAt[0]
	for _, t := range c.portFreeAt[1:] {
		if t < min {
			min = t
		}
	}
	return min
}

// NextEvent implements sim.Quiescent. The controller is idle when no
// fill, fetch, response, demand request or buffered write can make
// progress this cycle; timed wakes come from response/fetch maturity
// and bank-port initiation gaps. Blocked states that tick a stall (or
// merge/full-reject) counter every cycle are recorded for SkipTo.
func (c *Controller) NextEvent(now sim.Cycle) (sim.Cycle, bool) {
	wake := sim.Never
	c.skipMSHRFull, c.skipWBufFull, c.skipMergeRejects, c.skipWBufRejects = 0, 0, 0, 0
	needPort := false

	// handleFills: a visible downstream response.
	if c.down.Up.Len() > 0 {
		if c.wbuf.Full() {
			c.skipWBufFull++ // StallWBufFull ticks until the buffer drains
		} else if c.portAvail(now) {
			return 0, false
		} else {
			needPort = true
		}
	}
	// issueFetches.
	if c.fetchQ.Len() > 0 {
		switch r := c.fetchQ.Front().ready; {
		case r <= now:
			if c.down.Down.CanPush() {
				return 0, false
			}
			// Blocked on channel space: external.
		case r < wake:
			wake = r
		}
	}
	// deliverResponses.
	if c.pending.Len() > 0 {
		switch r := c.pending.Front().ready; {
		case r <= now:
			if c.up.Up.CanPush() {
				return 0, false
			}
		case r < wake:
			wake = r
		}
	}
	// acceptRequests: the head request blocks the queue, so only it
	// decides idleness.
	if req, ok := c.up.Down.Peek(); ok {
		line := c.bank.Line(req.Addr)
		if req.Kind == mem.Read {
			switch m := c.mshr.Lookup(line); {
			case c.wbuf.Contains(line):
				return 0, false
			case m != nil:
				if c.mshr.CanMerge(m) {
					return 0, false
				}
				c.skipMergeRejects++ // Merge is retried (and rejected) every cycle
			case c.mshr.Full():
				c.skipMSHRFull++
			case c.portAvail(now):
				return 0, false
			default:
				needPort = true
			}
		} else {
			// Write/Writeback: wbuf.Add coalesces even when full.
			if c.wbuf.Contains(line) || !c.wbuf.Full() {
				return 0, false
			}
			c.skipWBufFull++
			c.skipWBufRejects++
		}
	}
	// drainWriteBuffer head.
	if e, ok := c.wbuf.Peek(); ok {
		switch m := c.mshr.Lookup(e.Line); {
		case m != nil:
			if c.mshr.CanMerge(m) {
				return 0, false
			}
			c.skipMergeRejects++
		case c.bank.Probe(e.Line):
			if c.portAvail(now) {
				return 0, false
			}
			needPort = true
		case e.Kind == mem.Writeback || c.cfg.Policy == WriteThrough:
			if c.down.Down.CanPush() {
				return 0, false
			}
		case c.mshr.Full():
			c.skipMSHRFull++
		default:
			return 0, false // would allocate and fetch
		}
	}
	if needPort {
		if p := c.minPortFree(); p < wake {
			wake = p
		}
	}
	return wake, true
}

// SkipTo implements sim.Quiescent.
func (c *Controller) SkipTo(now, target sim.Cycle) {
	delta := uint64(target - now)
	c.StallMSHRFull += c.skipMSHRFull * delta
	c.StallWBufFull += c.skipWBufFull * delta
	c.mshr.MergeRejects += c.skipMergeRejects * delta
	c.wbuf.FullRejects += c.skipWBufRejects * delta
}

// Collect adds this level's counters to s under the given prefix.
func (c *Controller) Collect(prefix string, s *stats.Set) {
	s.Add(prefix+".reads", c.Reads)
	s.Add(prefix+".read_hits", c.ReadHits)
	s.Add(prefix+".read_misses", c.ReadMisses)
	s.Add(prefix+".writes", c.WritesApplied)
	s.Add(prefix+".write_hits", c.WriteHits)
	s.Add(prefix+".fills", c.Fills)
	s.Add(prefix+".writebacks_out", c.WritebacksOut)
	s.Add(prefix+".bank_accesses", c.BankAccesses)
	s.Add(prefix+".stall_mshr_full", c.StallMSHRFull)
	s.Add(prefix+".stall_wbuf_full", c.StallWBufFull)
	s.Add(prefix+".mshr_primary", c.mshr.Primary)
	s.Add(prefix+".mshr_secondary", c.mshr.Secondary)
}
