package cache

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// Target is one requester waiting on an outstanding miss. Addr preserves
// the requester's original address: levels below may use larger blocks,
// so a fill response must echo the address the requester asked for, not
// the coarser line that carried it.
type Target struct {
	ReqID  uint64
	Addr   mem.Addr
	Kind   mem.Kind
	Issued sim.Cycle
}

// MSHR tracks one outstanding miss (one block) and the requests merged
// into it.
type MSHR struct {
	Line    mem.Addr
	Targets []Target
	// SentDown records whether the downstream fetch has been issued
	// (allocation and issue can be separated by downstream backpressure).
	SentDown bool
}

// MSHRFile is a bounded set of MSHRs. Table I gives 16 entries for
// L1/L2 (8 for L3) and allows 4 secondary misses to merge per entry.
type MSHRFile struct {
	entries      []*MSHR
	freelist     []*MSHR // retired entries recycled by Allocate
	maxEntries   int
	maxSecondary int

	// Stats
	Primary, Secondary, MergeRejects, FullStalls uint64
}

// NewMSHRFile builds a file with maxEntries entries, each accepting
// maxSecondary merged requests beyond the first.
func NewMSHRFile(maxEntries, maxSecondary int) *MSHRFile {
	if maxEntries <= 0 {
		maxEntries = 1
	}
	if maxSecondary < 0 {
		maxSecondary = 0
	}
	return &MSHRFile{
		entries:      make([]*MSHR, 0, maxEntries),
		maxEntries:   maxEntries,
		maxSecondary: maxSecondary,
	}
}

// Lookup returns the MSHR for line, or nil.
func (f *MSHRFile) Lookup(line mem.Addr) *MSHR {
	for _, m := range f.entries {
		if m.Line == line {
			return m
		}
	}
	return nil
}

// Full reports whether a new primary miss cannot allocate.
func (f *MSHRFile) Full() bool { return len(f.entries) >= f.maxEntries }

// Len returns the number of live entries.
func (f *MSHRFile) Len() int { return len(f.entries) }

// Allocate creates an entry for a primary miss on line. It returns nil
// when the file is full (the caller must stall). Entries released by
// Free are recycled, so a steady-state miss stream allocates nothing.
func (f *MSHRFile) Allocate(line mem.Addr, t Target) *MSHR {
	if f.Full() {
		f.FullStalls++
		return nil
	}
	var m *MSHR
	if n := len(f.freelist); n > 0 {
		m = f.freelist[n-1]
		f.freelist = f.freelist[:n-1]
		m.Line = line
		//lnuca:allow(hotalloc) recycled entry appends into its retained Targets capacity
		m.Targets = append(m.Targets[:0], t)
		m.SentDown = false
	} else {
		//lnuca:allow(hotalloc) first allocation of an entry; the freelist recycles it afterwards
		m = &MSHR{Line: line, Targets: make([]Target, 1, 1+f.maxSecondary)}
		m.Targets[0] = t
	}
	//lnuca:allow(hotalloc) grows to a high-water mark, then reuses the backing array; steady state is allocation-free
	f.entries = append(f.entries, m)
	f.Primary++
	return m
}

// Merge adds a secondary miss to an existing entry. It reports false when
// the per-entry secondary limit is reached (the caller must stall).
func (f *MSHRFile) Merge(m *MSHR, t Target) bool {
	if !f.CanMerge(m) {
		f.MergeRejects++
		return false
	}
	//lnuca:allow(hotalloc) targets grow to the per-entry secondary cap, then the entry is recycled
	m.Targets = append(m.Targets, t)
	f.Secondary++
	return true
}

// CanMerge reports whether m still has secondary-miss room, without
// touching any counter (the pure predicate quiescence checks use).
func (f *MSHRFile) CanMerge(m *MSHR) bool {
	return len(m.Targets)-1 < f.maxSecondary
}

// Free releases the entry for line and returns its merged targets in
// arrival order. It returns nil when no entry exists. The returned
// slice aliases a recycled entry: it is valid only until the next
// Allocate on this file (every caller consumes it immediately).
func (f *MSHRFile) Free(line mem.Addr) []Target {
	for i, m := range f.entries {
		if m.Line == line {
			//lnuca:allow(hotalloc) in-place filter into the slice's own backing array; no growth
			f.entries = append(f.entries[:i], f.entries[i+1:]...)
			//lnuca:allow(hotalloc) freelist grows to the live-entry high-water mark, then recycles
			f.freelist = append(f.freelist, m)
			return m.Targets
		}
	}
	return nil
}

// PendingIssue returns entries whose downstream fetch has not been sent.
func (f *MSHRFile) PendingIssue() []*MSHR {
	var out []*MSHR
	for _, m := range f.entries {
		if !m.SentDown {
			out = append(out, m)
		}
	}
	return out
}
