// Package cpu implements the trace-driven out-of-order core model that
// stands in for the paper's extended SimpleScalar/Alpha 3.0d (Section IV):
// a 4-wide machine with a 128-entry ROB, split issue windows, a 64-entry
// LSQ, a 48-entry store buffer, a combining branch predictor with 8-cycle
// redirect, a data TLB, and a non-blocking memory interface whose
// parallelism is bounded by the cache hierarchy's MSHRs.
package cpu

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Class discriminates micro-op types.
type Class uint8

const (
	// ClassInt is a single-cycle integer ALU op.
	ClassInt Class = iota
	// ClassFP is a floating-point op (multi-cycle).
	ClassFP
	// ClassLoad reads memory.
	ClassLoad
	// ClassStore writes memory.
	ClassStore
	// ClassBranch is a conditional branch.
	ClassBranch
)

func (c Class) String() string {
	switch c {
	case ClassInt:
		return "int"
	case ClassFP:
		return "fp"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Op is one dynamic correct-path micro-operation.
type Op struct {
	Class Class
	// Dep1/Dep2 are backward distances (in dynamic ops) to producers;
	// zero means no dependency.
	Dep1, Dep2 int32
	// Addr is the effective address of loads and stores.
	Addr mem.Addr
	// PC identifies the static instruction (predictor indexing).
	PC uint64
	// Taken is the resolved direction of branches.
	Taken bool
	// Lat overrides the execution latency when non-zero.
	Lat uint8
}

// Stream supplies the dynamic instruction trace.
type Stream interface {
	// Next returns the next correct-path op; ok=false ends simulation.
	Next() (op Op, ok bool)
}

// Config is the core configuration (Table I defaults).
type Config struct {
	FetchWidth         int // 4
	MaxTakenPerCycle   int // 2
	DecodeQueue        int
	ROBSize            int // 128
	LSQSize            int // 64
	StoreBufSize       int // 48
	IntIQ, FPIQ, MemIQ int // 32 / 24 / 16
	IntMemIssue        int // 4 (INT or MEM)
	FPIssue            int // 4
	CommitWidth        int // 4
	MispredictDelay    int // 8
	IntLatency         int // 1
	FPLatency          int // 4
	TLBEntries         int // data TLB entries
	TLBMissLatency     int // 30
	PageBytes          int
}

// DefaultConfig returns the Table I processor.
func DefaultConfig() Config {
	return Config{
		FetchWidth:       4,
		MaxTakenPerCycle: 2,
		DecodeQueue:      16,
		ROBSize:          128,
		LSQSize:          64,
		StoreBufSize:     48,
		IntIQ:            32,
		FPIQ:             24,
		MemIQ:            16,
		IntMemIssue:      4,
		FPIssue:          4,
		CommitWidth:      4,
		MispredictDelay:  8,
		IntLatency:       1,
		FPLatency:        4,
		TLBEntries:       64,
		TLBMissLatency:   30,
		PageBytes:        4 << 10,
	}
}

// decoded is a fetched op with its fetch-time prediction outcome.
type decoded struct {
	op         Op
	mispredict bool
}

// robEntry tracks one in-flight op.
type robEntry struct {
	op         Op
	seq        uint64
	dispatched sim.Cycle
	issued     bool
	done       bool
	doneAt     sim.Cycle
	inFlight   bool // load waiting on memory
	mispredict bool
	reqID      uint64
	tlbExtra   int
}

// Core is the out-of-order processor model. It talks to the first cache
// level through a mem.Port.
type Core struct {
	name   string
	cfg    Config
	stream Stream
	port   *mem.Port
	ids    *mem.IDSource
	bpred  *BPred

	// Decode queue between fetch and dispatch.
	decq sim.Queue[decoded]

	// ROB is a ring of in-flight ops; seq of head entry = headSeq.
	rob     []robEntry
	headSeq uint64
	tailSeq uint64 // next seq to allocate

	// Issue queues hold ROB seqs awaiting issue.
	intQ, fpQ, memQ []uint64

	// lsq tracks in-flight memory ops (loads and stores pre-commit).
	lsqCount int

	// Store buffer: committed stores draining to the cache.
	storeBuf sim.Queue[mem.Addr]

	// Fetch gating after a mispredicted branch.
	fetchResumeAt sim.Cycle
	fetchBlocked  bool
	blockingSeq   uint64

	// Load completion routing.
	loadBySeq map[uint64]uint64 // reqID -> seq

	// dTLB: direct-mapped over page numbers.
	tlb []uint64

	streamDone bool
	maxInstr   uint64

	// Quiescence bookkeeping: which per-cycle stall counters an idle
	// cycle increments, recorded by NextEvent and applied by SkipTo.
	skipSB           bool
	skipStall        *uint64
	skipFetchBlocked bool

	// Stats.
	Committed, Cycles                   uint64
	LoadsIssued, StoresCommitted        uint64
	Mispredicts, Branches               uint64
	TLBMisses                           uint64
	StallROBFull, StallIQFull, StallLSQ uint64
	StallSBFull, FetchBlockedCycles     uint64
	LoadLatencySum, LoadsCompleted      uint64
	// LoadLatHist buckets the dispatch-to-complete latency of every load
	// that went to memory (the same events LoadLatencySum accumulates).
	LoadLatHist *stats.Histogram
}

// loadLatBuckets bounds the per-cycle load-latency buckets; DRAM-bound
// loads beyond it land in the histogram's overflow bucket.
const loadLatBuckets = 512

// New builds a core reading ops from stream and accessing memory via port.
// maxInstr bounds the committed instruction count (0 = unbounded).
func New(name string, cfg Config, stream Stream, port *mem.Port, ids *mem.IDSource, maxInstr uint64) *Core {
	if cfg.FetchWidth <= 0 {
		cfg = DefaultConfig()
	}
	c := &Core{
		name:      name,
		cfg:       cfg,
		stream:    stream,
		port:      port,
		ids:       ids,
		bpred:     NewBPred(),
		rob:       make([]robEntry, cfg.ROBSize),
		loadBySeq: make(map[uint64]uint64),
		tlb:       make([]uint64, cfg.TLBEntries),
		maxInstr:  maxInstr,

		LoadLatHist: stats.NewHistogram(loadLatBuckets),
	}
	for i := range c.tlb {
		c.tlb[i] = ^uint64(0)
	}
	return c
}

// Name implements sim.Component.
func (c *Core) Name() string { return c.name }

// robAt returns the ROB entry for seq.
func (c *Core) robAt(seq uint64) *robEntry {
	return &c.rob[seq%uint64(len(c.rob))]
}

// robOccupancy returns in-flight op count.
func (c *Core) robOccupancy() int { return int(c.tailSeq - c.headSeq) }

// depReady reports whether the producer at distance d from seq has a
// visible result at cycle now.
func (c *Core) depReady(seq uint64, d int32, now sim.Cycle) bool {
	if d <= 0 {
		return true
	}
	if uint64(d) > seq {
		return true
	}
	p := seq - uint64(d)
	if p < c.headSeq {
		return true // already committed
	}
	e := c.robAt(p)
	return e.done && e.doneAt <= now
}

// Eval implements sim.Component.
func (c *Core) Eval(k *sim.Kernel) {
	now := k.Cycle()
	c.Cycles++
	c.drainResponses(now)
	c.commit(now, k)
	c.drainStoreBuffer(now)
	c.issue(now)
	c.dispatch(now)
	c.fetch(now)
	if c.streamDone && c.robOccupancy() == 0 && c.decq.Len() == 0 {
		k.Stop()
	}
}

// Commit implements sim.Component.
func (c *Core) Commit(k *sim.Kernel) {
	c.port.Down.Tick()
}

// drainResponses completes loads whose data arrived.
func (c *Core) drainResponses(now sim.Cycle) {
	for {
		resp, ok := c.port.Up.Pop()
		if !ok {
			return
		}
		seq, ok := c.loadBySeq[resp.ID]
		if !ok {
			continue // store ack or stale
		}
		delete(c.loadBySeq, resp.ID)
		e := c.robAt(seq)
		if e.seq == seq && e.inFlight {
			e.inFlight = false
			e.done = true
			e.doneAt = now + sim.Cycle(e.tlbExtra)
			c.LoadLatencySum += uint64(e.doneAt - e.dispatched)
			c.LoadsCompleted++
			c.LoadLatHist.Observe(int(e.doneAt - e.dispatched))
		}
	}
}

// commit retires completed ops in order.
func (c *Core) commit(now sim.Cycle, k *sim.Kernel) {
	for n := 0; n < c.cfg.CommitWidth && c.headSeq < c.tailSeq; n++ {
		e := c.robAt(c.headSeq)
		if !e.done || e.doneAt > now {
			return
		}
		if e.op.Class == ClassStore {
			if c.storeBuf.Len() >= c.cfg.StoreBufSize {
				c.StallSBFull++
				return
			}
			c.storeBuf.Push(e.op.Addr)
			c.StoresCommitted++
			c.lsqCount--
		}
		if e.op.Class == ClassLoad {
			c.lsqCount--
		}
		c.headSeq++
		c.Committed++
		if c.maxInstr > 0 && c.Committed >= c.maxInstr {
			k.Stop()
			return
		}
	}
}

// drainStoreBuffer sends one committed store per cycle to the cache.
func (c *Core) drainStoreBuffer(now sim.Cycle) {
	if c.storeBuf.Len() == 0 || !c.port.Down.CanPush() {
		return
	}
	addr, _ := c.storeBuf.Pop()
	//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
	c.port.Down.Push(&mem.Req{ID: c.ids.Next(), Addr: addr, Kind: mem.Write, Issued: now})
}

// issueFrom issues up to width ready ops from q (oldest first), returning
// the updated queue and the number of issue slots consumed.
func (c *Core) issueFrom(q []uint64, width int, now sim.Cycle) ([]uint64, int) {
	if width <= 0 {
		return q, 0
	}
	used := 0
	kept := q[:0]
	for _, seq := range q {
		if used >= width {
			//lnuca:allow(hotalloc) in-place filter into the slice's own backing array; no growth
			kept = append(kept, seq)
			continue
		}
		e := c.robAt(seq)
		if e.dispatched >= now || !c.depReady(seq, e.op.Dep1, now) || !c.depReady(seq, e.op.Dep2, now) {
			//lnuca:allow(hotalloc) in-place filter into the slice's own backing array; no growth
			kept = append(kept, seq)
			continue
		}
		if !c.tryExecute(e, now) {
			//lnuca:allow(hotalloc) in-place filter into the slice's own backing array; no growth
			kept = append(kept, seq)
			continue
		}
		used++
	}
	return kept, used
}

// tryExecute starts execution of a ready op; false means structural stall
// (e.g. the memory port is full).
func (c *Core) tryExecute(e *robEntry, now sim.Cycle) bool {
	switch e.op.Class {
	case ClassLoad:
		extra := c.tlbLookup(e.op.Addr)
		if c.storeForward(e.op.Addr) {
			e.issued = true
			e.done = true
			e.doneAt = now + 2 + sim.Cycle(extra)
			c.LoadsIssued++
			return true
		}
		if !c.port.Down.CanPush() {
			return false
		}
		id := c.ids.Next()
		//lnuca:allow(hotalloc) per-transaction message, not per-cycle; hier.BenchmarkStepAllocs pins steady state at 0 allocs/cycle
		c.port.Down.Push(&mem.Req{ID: id, Addr: e.op.Addr, Kind: mem.Read, Issued: now})
		c.loadBySeq[id] = e.seq
		e.issued = true
		e.inFlight = true
		e.reqID = id
		e.tlbExtra = extra // TLB walk delays data visibility
		c.LoadsIssued++
		return true
	case ClassStore:
		_ = c.tlbLookup(e.op.Addr)
		e.issued = true
		e.done = true
		e.doneAt = now + 1
		return true
	case ClassFP:
		lat := c.cfg.FPLatency
		if e.op.Lat > 0 {
			lat = int(e.op.Lat)
		}
		e.issued = true
		e.done = true
		e.doneAt = now + sim.Cycle(lat)
		return true
	default: // Int, Branch
		lat := c.cfg.IntLatency
		if e.op.Lat > 0 {
			lat = int(e.op.Lat)
		}
		e.issued = true
		e.done = true
		e.doneAt = now + sim.Cycle(lat)
		if e.op.Class == ClassBranch && e.mispredict {
			// Redirect: fetch resumes after the misprediction delay.
			c.fetchResumeAt = now + sim.Cycle(lat) + sim.Cycle(c.cfg.MispredictDelay)
			c.fetchBlocked = false
		}
		return true
	}
}

// issue runs both issue groups. INT and MEM share the 4 integer-side
// slots (Table I: "4(INT or MEM)"); memory ops get priority since loads
// gate dependents.
func (c *Core) issue(now sim.Cycle) {
	var used int
	c.memQ, used = c.issueFrom(c.memQ, c.cfg.IntMemIssue, now)
	c.intQ, _ = c.issueFrom(c.intQ, c.cfg.IntMemIssue-used, now)
	c.fpQ, _ = c.issueFrom(c.fpQ, c.cfg.FPIssue, now)
}

// dispatch moves decoded ops into the ROB and issue queues.
func (c *Core) dispatch(now sim.Cycle) {
	for c.decq.Len() > 0 {
		if c.robOccupancy() >= c.cfg.ROBSize {
			c.StallROBFull++
			return
		}
		op := c.decq.Front().op
		var q *[]uint64
		var limit int
		switch op.Class {
		case ClassFP:
			q, limit = &c.fpQ, c.cfg.FPIQ
		case ClassLoad, ClassStore:
			q, limit = &c.memQ, c.cfg.MemIQ
			if c.lsqCount >= c.cfg.LSQSize {
				c.StallLSQ++
				return
			}
		default:
			q, limit = &c.intQ, c.cfg.IntIQ
		}
		if len(*q) >= limit {
			c.StallIQFull++
			return
		}
		dec, _ := c.decq.Pop()
		seq := c.tailSeq
		c.tailSeq++
		*c.robAt(seq) = robEntry{op: op, seq: seq, dispatched: now, mispredict: dec.mispredict}
		if op.Class == ClassLoad || op.Class == ClassStore {
			c.lsqCount++
		}
		if op.Class == ClassBranch {
			c.Branches++
			if dec.mispredict {
				c.Mispredicts++
				c.blockingSeq = seq
			}
		}
		//lnuca:allow(hotalloc) issue queue grows to a ROB-bounded high-water mark, then reuses
		*q = append(*q, seq)
	}
}

// fetch brings up to FetchWidth ops per cycle into the decode queue,
// stopping at the configured taken-branch limit and at mispredicted
// branches (trace-driven redirect model).
func (c *Core) fetch(now sim.Cycle) {
	if c.streamDone {
		return
	}
	if c.fetchBlocked || now < c.fetchResumeAt {
		c.FetchBlockedCycles++
		return
	}
	taken := 0
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.decq.Len() >= c.cfg.DecodeQueue {
			return
		}
		op, ok := c.stream.Next()
		if !ok {
			c.streamDone = true
			return
		}
		dec := decoded{op: op}
		if op.Class == ClassBranch {
			// Predict and train at fetch; a misprediction gates fetch
			// until the branch resolves (trace-driven redirect model).
			dec.mispredict = c.bpred.Update(op.PC, op.Taken)
			if dec.mispredict {
				c.fetchBlocked = true
			}
		}
		c.decq.Push(dec)
		if dec.mispredict {
			return
		}
		if op.Class == ClassBranch && op.Taken {
			taken++
			if taken >= c.cfg.MaxTakenPerCycle {
				return
			}
		}
	}
}

// NextEvent implements sim.Quiescent. The core is idle when no response
// is visible, nothing can retire, issue, dispatch, drain or fetch this
// cycle; its timed wakes are completion times of done-but-unretired or
// dependency-producing ops, issue eligibility (dispatched+1), and the
// post-misprediction fetch resume. Blocked phases that tick a stall
// counter every cycle (store buffer full, dispatch stalls, gated fetch)
// are recorded for SkipTo.
func (c *Core) NextEvent(now sim.Cycle) (sim.Cycle, bool) {
	if c.port.Up.Len() > 0 {
		return 0, false // a response would be drained
	}
	if c.streamDone && c.robOccupancy() == 0 && c.decq.Len() == 0 {
		return 0, false // Eval must run to Stop the kernel
	}
	wake := sim.Never
	c.skipSB = false
	c.skipStall = nil
	c.skipFetchBlocked = false

	// Commit: can the head retire, and if not, when could it?
	if c.robOccupancy() > 0 {
		e := c.robAt(c.headSeq)
		if e.done {
			if e.doneAt <= now {
				if e.op.Class == ClassStore && c.storeBuf.Len() >= c.cfg.StoreBufSize {
					c.skipSB = true // StallSBFull ticks every blocked cycle
				} else {
					return 0, false
				}
			} else if e.doneAt < wake {
				wake = e.doneAt
			}
		}
		// !e.done: an in-flight load (external) or an un-issued op
		// (covered by the issue-queue scan below).
	}

	// Store buffer drain.
	if c.storeBuf.Len() > 0 && c.port.Down.CanPush() {
		return 0, false
	}

	// Dispatch: would the decode-queue head move into the ROB?
	if c.decq.Len() > 0 {
		switch op := c.decq.Front().op; {
		case c.robOccupancy() >= c.cfg.ROBSize:
			c.skipStall = &c.StallROBFull
		case (op.Class == ClassLoad || op.Class == ClassStore) && c.lsqCount >= c.cfg.LSQSize:
			c.skipStall = &c.StallLSQ
		case op.Class == ClassFP && len(c.fpQ) >= c.cfg.FPIQ,
			(op.Class == ClassLoad || op.Class == ClassStore) && len(c.memQ) >= c.cfg.MemIQ,
			op.Class != ClassFP && op.Class != ClassLoad && op.Class != ClassStore && len(c.intQ) >= c.cfg.IntIQ:
			c.skipStall = &c.StallIQFull
		default:
			return 0, false // the head would dispatch
		}
	}

	// Fetch.
	if !c.streamDone {
		if c.fetchBlocked {
			c.skipFetchBlocked = true // resolves when the branch issues
		} else if now < c.fetchResumeAt {
			c.skipFetchBlocked = true
			if c.fetchResumeAt < wake {
				wake = c.fetchResumeAt
			}
		} else if c.decq.Len() < c.cfg.DecodeQueue {
			return 0, false // would fetch
		}
	}

	// Issue queues: the expensive scan last. An op is issuable at
	// max(dispatched+1, producers' doneAt); in-flight producers mean an
	// external wake (the response drain is an active cycle).
	for _, q := range [3][]uint64{c.memQ, c.intQ, c.fpQ} {
		for _, seq := range q {
			e := c.robAt(seq)
			t := e.dispatched + 1
			external := false
			for _, d := range [2]int32{e.op.Dep1, e.op.Dep2} {
				if d <= 0 || uint64(d) > seq {
					continue
				}
				p := seq - uint64(d)
				if p < c.headSeq {
					continue // producer already committed
				}
				pe := c.robAt(p)
				if !pe.done {
					external = true // waiting on an in-flight load
					break
				}
				if pe.doneAt > t {
					t = pe.doneAt
				}
			}
			if external {
				continue
			}
			if t <= now {
				// Ready now: everything but a load blocked on a full
				// memory port (and with no forwarding hit) executes.
				if e.op.Class != ClassLoad || c.storeForward(e.op.Addr) || c.port.Down.CanPush() {
					return 0, false
				}
				continue
			}
			if t < wake {
				wake = t
			}
		}
	}
	return wake, true
}

// SkipTo implements sim.Quiescent: apply the arithmetic bookkeeping of
// the skipped idle cycles.
func (c *Core) SkipTo(now, target sim.Cycle) {
	delta := uint64(target - now)
	c.Cycles += delta
	if c.skipSB {
		c.StallSBFull += delta
	}
	if c.skipStall != nil {
		*c.skipStall += delta
	}
	if c.skipFetchBlocked {
		c.FetchBlockedCycles += delta
	}
}

// storeForward reports whether an older store to the same line can
// forward (store buffer or in-flight LSQ stores).
func (c *Core) storeForward(a mem.Addr) bool {
	line := a.Line(32)
	for i := 0; i < c.storeBuf.Len(); i++ {
		if c.storeBuf.At(i).Line(32) == line {
			return true
		}
	}
	for seq := c.headSeq; seq < c.tailSeq; seq++ {
		e := c.robAt(seq)
		if e.op.Class == ClassStore && e.issued && e.op.Addr.Line(32) == line {
			return true
		}
	}
	return false
}

// tlbLookup returns the extra latency of a TLB miss (0 on hit) and
// installs the translation.
func (c *Core) tlbLookup(a mem.Addr) int {
	page := uint64(a) / uint64(c.cfg.PageBytes)
	idx := page % uint64(len(c.tlb))
	if c.tlb[idx] == page {
		return 0
	}
	c.tlb[idx] = page
	c.TLBMisses++
	return c.cfg.TLBMissLatency
}

// MaxCommitPerCycle returns the commit width, the hard per-cycle bound
// on retirement (window-boundary clamping in the experiment harness).
func (c *Core) MaxCommitPerCycle() int { return c.cfg.CommitWidth }

// IPC returns committed instructions per cycle.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Committed) / float64(c.Cycles)
}

// AvgLoadLatency returns mean load dispatch-to-complete cycles.
func (c *Core) AvgLoadLatency() float64 {
	if c.LoadsCompleted == 0 {
		return 0
	}
	return float64(c.LoadLatencySum) / float64(c.LoadsCompleted)
}

// BranchAccuracy returns the predictor accuracy.
func (c *Core) BranchAccuracy() float64 { return c.bpred.Accuracy() }

// Done reports whether the committed-instruction budget is exhausted.
func (c *Core) Done() bool {
	return c.maxInstr > 0 && c.Committed >= c.maxInstr
}

// Collect adds core counters to s under prefix.
func (c *Core) Collect(prefix string, s *stats.Set) {
	s.Add(prefix+".committed", c.Committed)
	s.Add(prefix+".cycles", c.Cycles)
	s.Add(prefix+".loads", c.LoadsIssued)
	s.Add(prefix+".stores", c.StoresCommitted)
	s.Add(prefix+".branches", c.Branches)
	s.Add(prefix+".mispredicts", c.Mispredicts)
	s.Add(prefix+".tlb_misses", c.TLBMisses)
	s.Add(prefix+".stall_rob", c.StallROBFull)
	s.Add(prefix+".stall_iq", c.StallIQFull)
	s.Add(prefix+".stall_lsq", c.StallLSQ)
	s.Add(prefix+".stall_sb", c.StallSBFull)
	s.Add(prefix+".fetch_blocked", c.FetchBlockedCycles)
	s.SetScalar(prefix+".ipc", c.IPC())
	s.SetScalar(prefix+".bpred_accuracy", c.BranchAccuracy())
	s.SetScalar(prefix+".avg_load_latency", c.AvgLoadLatency())
}
