package cpu

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
)

// sliceStream replays a fixed op sequence, optionally repeating.
type sliceStream struct {
	ops    []Op
	i      int
	repeat bool
}

func (s *sliceStream) Next() (Op, bool) {
	if s.i >= len(s.ops) {
		if !s.repeat || len(s.ops) == 0 {
			return Op{}, false
		}
		s.i = 0
	}
	op := s.ops[s.i]
	s.i++
	return op, true
}

// fastMem responds to reads on a port after a fixed delay.
type fastMem struct {
	port    *mem.Port
	delay   sim.Cycle
	pending []struct {
		r  *mem.Resp
		at sim.Cycle
	}
	Reads, Writes uint64
}

func (m *fastMem) Name() string { return "fastmem" }
func (m *fastMem) Eval(k *sim.Kernel) {
	now := k.Cycle()
	for {
		req, ok := m.port.Down.Pop()
		if !ok {
			break
		}
		if req.Kind == mem.Read {
			m.Reads++
			m.pending = append(m.pending, struct {
				r  *mem.Resp
				at sim.Cycle
			}{&mem.Resp{ID: req.ID, Addr: req.Addr}, now + m.delay})
		} else {
			m.Writes++
		}
	}
	for len(m.pending) > 0 && m.pending[0].at <= now && m.port.Up.CanPush() {
		m.port.Up.Push(m.pending[0].r)
		m.pending = m.pending[1:]
	}
}
func (m *fastMem) Commit(k *sim.Kernel) { m.port.Up.Tick() }

// runCore simulates a core over the stream until it stops (or maxCycles).
func runCore(t *testing.T, ops []Op, repeat bool, maxInstr uint64, memDelay sim.Cycle) (*Core, *fastMem) {
	t.Helper()
	port := mem.NewPort(8, 8)
	var ids mem.IDSource
	core := New("cpu", DefaultConfig(), &sliceStream{ops: ops, repeat: repeat}, port, &ids, maxInstr)
	fm := &fastMem{port: port, delay: memDelay}
	k := sim.NewKernel()
	k.MustRegister(core)
	k.MustRegister(fm)
	k.Run(1_000_000)
	if !k.Stopped() {
		t.Fatal("core never stopped")
	}
	return core, fm
}

func intOp() Op   { return Op{Class: ClassInt} }
func chainOp() Op { return Op{Class: ClassInt, Dep1: 1} }

func TestIndependentIntIPCNearWidth(t *testing.T) {
	core, _ := runCore(t, []Op{intOp()}, true, 20000, 2)
	// 4-wide fetch/issue/commit: IPC should approach 4.
	if core.IPC() < 3.5 {
		t.Fatalf("IPC = %v, want ~4 for independent int ops", core.IPC())
	}
}

func TestDependentChainIPCNearOne(t *testing.T) {
	core, _ := runCore(t, []Op{chainOp()}, true, 10000, 2)
	if core.IPC() > 1.1 || core.IPC() < 0.8 {
		t.Fatalf("IPC = %v, want ~1 for a serial dependency chain", core.IPC())
	}
}

func TestFPChainSlowerThanIntChain(t *testing.T) {
	fp := []Op{{Class: ClassFP, Dep1: 1}}
	core, _ := runCore(t, fp, true, 5000, 2)
	// FP latency 4: chain IPC ~ 1/4.
	if core.IPC() > 0.35 {
		t.Fatalf("FP chain IPC = %v, want ~0.25", core.IPC())
	}
}

func TestMemoryLevelParallelism(t *testing.T) {
	// Independent loads to distinct lines overlap; dependent loads do not.
	indep := make([]Op, 16)
	for i := range indep {
		indep[i] = Op{Class: ClassLoad, Addr: mem.Addr(i * 64)}
	}
	chain := make([]Op, 16)
	for i := range chain {
		chain[i] = Op{Class: ClassLoad, Addr: mem.Addr(i * 64), Dep1: 1}
	}
	coreI, _ := runCore(t, indep, true, 4000, 20)
	coreC, _ := runCore(t, chain, true, 4000, 20)
	if coreI.IPC() < 2*coreC.IPC() {
		t.Fatalf("independent loads IPC %v not much faster than chained %v",
			coreI.IPC(), coreC.IPC())
	}
}

func TestMispredictionsHurtIPC(t *testing.T) {
	rng := sim.NewRand(5)
	mixed := func(pattern func(i int) bool) []Op {
		var ops []Op
		for i := 0; i < 64; i++ {
			ops = append(ops, intOp(), intOp(), intOp(),
				Op{Class: ClassBranch, PC: uint64(0x100 + 16*(i%8)), Taken: pattern(i)})
		}
		return ops
	}
	biased, _ := runCore(t, mixed(func(i int) bool { return true }), true, 20000, 2)
	random, _ := runCore(t, mixed(func(i int) bool { return rng.Bool(0.5) }), true, 20000, 2)
	if random.IPC() >= biased.IPC() {
		t.Fatalf("random branches IPC %v not below biased %v", random.IPC(), biased.IPC())
	}
	if biased.BranchAccuracy() < 0.95 {
		t.Fatalf("biased accuracy = %v", biased.BranchAccuracy())
	}
	if random.Mispredicts == 0 {
		t.Fatal("random branches produced no mispredicts")
	}
}

func TestStoresReachMemory(t *testing.T) {
	ops := []Op{{Class: ClassStore, Addr: 0x1000}, intOp()}
	_, fm := runCore(t, ops, true, 2000, 2)
	if fm.Writes == 0 {
		t.Fatal("committed stores never drained to the cache")
	}
}

func TestStoreForwardingAvoidsMemory(t *testing.T) {
	// A load that follows a store to the same line forwards and issues no
	// memory read.
	ops := []Op{
		{Class: ClassStore, Addr: 0x2000},
		{Class: ClassLoad, Addr: 0x2000, Dep1: 0},
	}
	core, fm := runCore(t, ops, true, 2000, 50)
	if fm.Reads != 0 {
		t.Fatalf("forwardable loads issued %d memory reads", fm.Reads)
	}
	if core.LoadsIssued == 0 {
		t.Fatal("loads never issued")
	}
}

func TestMaxInstrStopsSimulation(t *testing.T) {
	core, _ := runCore(t, []Op{intOp()}, true, 1234, 2)
	if core.Committed != 1234 {
		t.Fatalf("Committed = %d, want exactly 1234", core.Committed)
	}
	if !core.Done() {
		t.Fatal("Done should report true")
	}
}

func TestFiniteStreamDrains(t *testing.T) {
	ops := make([]Op, 100)
	for i := range ops {
		ops[i] = intOp()
	}
	core, _ := runCore(t, ops, false, 0, 2)
	if core.Committed != 100 {
		t.Fatalf("Committed = %d, want 100 (stream length)", core.Committed)
	}
}

func TestTLBMissesCounted(t *testing.T) {
	// Loads striding across many pages must miss the 64-entry TLB.
	ops := make([]Op, 256)
	for i := range ops {
		ops[i] = Op{Class: ClassLoad, Addr: mem.Addr(i * 8192)}
	}
	core, _ := runCore(t, ops, false, 0, 2)
	if core.TLBMisses == 0 {
		t.Fatal("page-striding loads produced no TLB misses")
	}
}

func TestTLBMissSlowsLoads(t *testing.T) {
	hot := make([]Op, 64)
	for i := range hot {
		hot[i] = Op{Class: ClassLoad, Addr: mem.Addr(i*64) % 4096, Dep1: 1}
	}
	cold := make([]Op, 64)
	for i := range cold {
		cold[i] = Op{Class: ClassLoad, Addr: mem.Addr(i * 128 * 4096), Dep1: 1}
	}
	coreHot, _ := runCore(t, hot, true, 3000, 4)
	coreCold, _ := runCore(t, cold, true, 3000, 4)
	if coreCold.IPC() >= coreHot.IPC() {
		t.Fatalf("TLB-missing loads IPC %v not below TLB-hitting %v",
			coreCold.IPC(), coreHot.IPC())
	}
}

func TestLoadLatencyTracked(t *testing.T) {
	ops := []Op{{Class: ClassLoad, Addr: 0x100, Dep1: 1}}
	core, _ := runCore(t, ops, true, 500, 30)
	if core.AvgLoadLatency() < 30 {
		t.Fatalf("AvgLoadLatency = %v, want >= memory delay 30", core.AvgLoadLatency())
	}
}

func TestCollect(t *testing.T) {
	core, _ := runCore(t, []Op{intOp()}, true, 1000, 2)
	s := stats.NewSet()
	core.Collect("cpu", s)
	if s.Counter("cpu.committed") != 1000 {
		t.Fatalf("Collect missing committed: %s", s)
	}
	if s.Scalar("cpu.ipc") <= 0 {
		t.Fatal("Collect missing ipc")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []Op {
		rng := sim.NewRand(9)
		var ops []Op
		for i := 0; i < 200; i++ {
			switch rng.Intn(4) {
			case 0:
				ops = append(ops, Op{Class: ClassLoad, Addr: mem.Addr(rng.Intn(1 << 16))})
			case 1:
				ops = append(ops, Op{Class: ClassBranch, PC: uint64(rng.Intn(64) * 16), Taken: rng.Bool(0.7)})
			default:
				ops = append(ops, Op{Class: ClassInt, Dep1: int32(rng.Intn(3))})
			}
		}
		return ops
	}
	a, _ := runCore(t, mk(), true, 5000, 10)
	b, _ := runCore(t, mk(), true, 5000, 10)
	if a.Cycles != b.Cycles || a.Committed != b.Committed {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/instr",
			a.Cycles, a.Committed, b.Cycles, b.Committed)
	}
}
