package cpu

// Combining branch predictor in the style the paper configures
// SimpleScalar with: a bimodal table plus a gshare component with 16 bits
// of global history, selected by a chooser table (Table I: "bimodal +
// gshare, 16 bit").
type BPred struct {
	bimodal []uint8 // 2-bit counters indexed by PC
	gshare  []uint8 // 2-bit counters indexed by PC ^ history
	chooser []uint8 // 2-bit meta: >=2 prefers gshare
	history uint16

	// Stats
	Lookups, Mispredicts uint64
}

const bpredBits = 16

// NewBPred builds the predictor with 2^16-entry tables.
func NewBPred() *BPred {
	n := 1 << bpredBits
	p := &BPred{
		bimodal: make([]uint8, n),
		gshare:  make([]uint8, n),
		chooser: make([]uint8, n),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not-taken
		p.gshare[i] = 1
		p.chooser[i] = 2 // weakly prefer gshare
	}
	return p
}

func (p *BPred) idxBimodal(pc uint64) int {
	return int(pc>>2) & (len(p.bimodal) - 1)
}

func (p *BPred) idxGshare(pc uint64) int {
	return (int(pc>>2) ^ int(p.history)) & (len(p.gshare) - 1)
}

// Predict returns the predicted direction for the branch at pc without
// training (a pure read; Update counts statistics).
func (p *BPred) Predict(pc uint64) bool {
	if p.chooser[p.idxBimodal(pc)] >= 2 {
		return p.gshare[p.idxGshare(pc)] >= 2
	}
	return p.bimodal[p.idxBimodal(pc)] >= 2
}

// Update trains the predictor with the resolved outcome and reports
// whether the prediction made with the current state was correct. Callers
// use the returned mispredict flag at fetch time and train immediately,
// which approximates in-order update well enough for a timing model.
func (p *BPred) Update(pc uint64, taken bool) (mispredicted bool) {
	p.Lookups++
	bi := p.idxBimodal(pc)
	gi := p.idxGshare(pc)
	bPred := p.bimodal[bi] >= 2
	gPred := p.gshare[gi] >= 2
	used := bPred
	if p.chooser[bi] >= 2 {
		used = gPred
	}
	mispredicted = used != taken

	// Train the chooser toward whichever component was right.
	if bPred != gPred {
		if gPred == taken {
			p.chooser[bi] = satInc(p.chooser[bi])
		} else {
			p.chooser[bi] = satDec(p.chooser[bi])
		}
	}
	if taken {
		p.bimodal[bi] = satInc(p.bimodal[bi])
		p.gshare[gi] = satInc(p.gshare[gi])
	} else {
		p.bimodal[bi] = satDec(p.bimodal[bi])
		p.gshare[gi] = satDec(p.gshare[gi])
	}
	p.history = p.history<<1 | b2u(taken)
	if mispredicted {
		p.Mispredicts++
	}
	return mispredicted
}

// Accuracy returns the fraction of correct predictions so far.
func (p *BPred) Accuracy() float64 {
	if p.Lookups == 0 {
		return 1
	}
	return 1 - float64(p.Mispredicts)/float64(p.Lookups)
}

func satInc(c uint8) uint8 {
	if c < 3 {
		return c + 1
	}
	return c
}

func satDec(c uint8) uint8 {
	if c > 0 {
		return c - 1
	}
	return c
}

func b2u(b bool) uint16 {
	if b {
		return 1
	}
	return 0
}
