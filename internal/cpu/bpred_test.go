package cpu

import (
	"testing"

	"repro/internal/sim"
)

func TestBPredLearnsBias(t *testing.T) {
	p := NewBPred()
	// A heavily-taken branch must be predicted taken after warmup.
	for i := 0; i < 1000; i++ {
		p.Update(0x400, true)
	}
	if !p.Predict(0x400) {
		t.Fatal("biased-taken branch not learned")
	}
	if p.Accuracy() < 0.95 {
		t.Fatalf("accuracy on a fully biased branch = %v, want > 0.95", p.Accuracy())
	}
}

func TestBPredLearnsPatternViaHistory(t *testing.T) {
	p := NewBPred()
	// A short loop pattern (TTTN) is gshare's bread and butter.
	pattern := []bool{true, true, true, false}
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		taken := pattern[i%len(pattern)]
		if p.Predict(0x800) == taken {
			correct++
		}
		p.Update(0x800, taken)
		total++
	}
	// Skip warmup: check steady-state over the last half.
	acc := float64(correct) / float64(total)
	if acc < 0.85 {
		t.Fatalf("pattern accuracy = %v, want > 0.85 (gshare should learn TTTN)", acc)
	}
}

func TestBPredRandomBranchNearChance(t *testing.T) {
	p := NewBPred()
	rng := sim.NewRand(42)
	for i := 0; i < 20000; i++ {
		p.Update(uint64(0xC00+16*(i%7)), rng.Bool(0.5))
	}
	if p.Accuracy() > 0.65 {
		t.Fatalf("accuracy on random branches = %v, should be near 0.5", p.Accuracy())
	}
}

func TestBPredDistinctBranchesIndependent(t *testing.T) {
	p := NewBPred()
	for i := 0; i < 2000; i++ {
		p.Update(0x1000, true)
		p.Update(0x2000, false)
	}
	if !p.Predict(0x1000) || p.Predict(0x2000) {
		t.Fatal("two opposite-bias branches interfere")
	}
}

func TestSaturatingCounters(t *testing.T) {
	if satInc(3) != 3 {
		t.Error("satInc should saturate at 3")
	}
	if satDec(0) != 0 {
		t.Error("satDec should saturate at 0")
	}
	if satInc(1) != 2 || satDec(2) != 1 {
		t.Error("counters should move by one")
	}
}

func TestAccuracyEmptyPredictor(t *testing.T) {
	if NewBPred().Accuracy() != 1 {
		t.Error("accuracy with no lookups should be 1")
	}
}
