package lightnuca

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/tracez"
	"repro/internal/orchestrator"
)

// Client is the HTTP Runner: it submits Requests to a running lnucad
// service and polls them to completion. Because the service decodes the
// same lnuca-run-v1 schema the Client marshals, a Request submitted here
// resolves to exactly the content key a Local runner computes, and the
// two share the service's result cache.
//
// Beyond Runner, Client exposes the full job lifecycle (Submit / Job /
// Cancel / Wait with streaming progress), sweep fan-out (SubmitSweep /
// WaitSweep), direct cache lookups, and the service's catalog and
// metrics endpoints.
type Client struct {
	// BaseURL is the service root, e.g. "http://localhost:8347".
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval spaces Wait's status polls (default 50ms).
	PollInterval time.Duration

	// MaxRetries bounds how many times an idempotent request (a GET —
	// polls, lookups, catalog reads) is retried after a transient
	// failure: a connection error, a 5xx, or a 429 from the service's
	// backpressure layer. Delays between attempts follow a jittered
	// exponential backoff, and a 429's Retry-After header overrides the
	// computed delay. Zero means the default (3); negative disables
	// retries. Mutating requests are never retried.
	MaxRetries int
	// RetryBaseDelay seeds the backoff (default 100ms); RetryMaxDelay
	// caps it (default 2s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// Tracer, when set, opens lnuca.client.* spans around Submit and
	// SubmitSweep and propagates their context to the service as a
	// traceparent header, so the daemon's job spans parent under the
	// caller's. Nil disables client-side tracing entirely. Prefer
	// EnableTracing, which also ships finished spans to the daemon.
	Tracer *tracez.Tracer

	// spanCol collects this client's finished spans for best-effort
	// delivery to POST /v1/spans; set by EnableTracing, nil when the
	// caller owns the Tracer's recorder.
	spanCol *tracez.Collector

	// sleepFn overrides the backoff sleep. Tests inject it to assert the
	// chosen delays (e.g. a 429's Retry-After) without spending
	// wall-clock time; nil means a real timer.
	sleepFn func(ctx context.Context, d time.Duration) error
}

// NewClient returns a Client for a lnucad address; a bare "host:port"
// is promoted to "http://host:port".
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{BaseURL: strings.TrimSuffix(addr, "/")}
}

// EnableTracing turns on client-side distributed tracing: Submit and
// SubmitSweep open spans, every request carries the ambient trace as a
// traceparent header, and finished client spans are shipped to the
// daemon's POST /v1/spans after each submission (best-effort — span
// delivery never fails an API call). Returns c for chaining.
func (c *Client) EnableTracing() *Client {
	col := &tracez.Collector{}
	c.spanCol = col
	c.Tracer = tracez.New(col)
	return c
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) pollInterval() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 50 * time.Millisecond
}

// do runs one JSON round trip. A non-2xx status decodes the service's
// {"error": ...} envelope into the returned error.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	contentType := ""
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("lightnuca: marshal %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(b)
		contentType = "application/json"
	}
	return c.doRaw(ctx, method, path, body, contentType, out)
}

// doRaw is the transport under do: an arbitrary request body (nil for
// none), the service's error envelope decoded into APIError on non-2xx,
// and the response decoded into out when non-nil. Idempotent requests
// (body-less GETs) are retried on transient failures per MaxRetries.
func (c *Client) doRaw(ctx context.Context, method, path string, body io.Reader, contentType string, out interface{}) error {
	retries := c.maxRetries()
	if method != http.MethodGet || body != nil {
		retries = 0 // only idempotent, replayable requests retry
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.doOnce(ctx, method, path, body, contentType, out)
		if err == nil || attempt >= retries || !transient(err) {
			return err
		}
		if werr := c.backoffWait(ctx, attempt, err); werr != nil {
			return err
		}
	}
}

// doOnce is a single request round trip.
func (c *Client) doOnce(ctx context.Context, method, path string, body io.Reader, contentType string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("lightnuca: %s %s: %w", method, path, err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if h := tracez.Inject(ctx); h != "" {
		req.Header.Set(tracez.HeaderName, h)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("lightnuca: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		apiErr := &APIError{Status: resp.StatusCode, Message: e.Error}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("lightnuca: decode %s %s: %w", method, path, err)
	}
	return nil
}

func (c *Client) maxRetries() int {
	switch {
	case c.MaxRetries > 0:
		return c.MaxRetries
	case c.MaxRetries < 0:
		return 0
	}
	return 3
}

// transient reports whether err is worth retrying: a transport-level
// failure (connection refused, reset, timeout — anything that never
// produced a response) or a service answer that promises the condition
// will pass (429 backpressure, 5xx).
func transient(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusTooManyRequests || apiErr.Status >= 500
	}
	// No decoded response: treat context cancellation as final, every
	// other transport failure as transient.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// backoffWait sleeps out the delay before retry number attempt+1: a
// jittered exponential backoff, overridden by the server's Retry-After
// on a 429. Returns non-nil when ctx ends the wait early.
func (c *Client) backoffWait(ctx context.Context, attempt int, cause error) error {
	base := c.RetryBaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := c.RetryMaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	delay := base << attempt
	if delay > max || delay <= 0 {
		delay = max
	}
	// Full jitter in [delay/2, delay): desynchronizes a fleet of
	// clients hammering a recovering service.
	delay = delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
	var apiErr *APIError
	if errors.As(cause, &apiErr) && apiErr.RetryAfter > 0 {
		delay = apiErr.RetryAfter
	}
	if c.sleepFn != nil {
		return c.sleepFn(ctx, delay)
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// APIError is a non-2xx service response.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the parsed Retry-After header of a 429, zero when
	// absent — the delay the service asks a backing-off client to hold.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("lightnuca: lnucad returned %d: %s", e.Status, e.Message)
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the service's operational counters.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Benchmarks fetches the workload catalog and the named mixes the
// service accepts.
func (c *Client) Benchmarks(ctx context.Context) (benchmarks, mixes []string, err error) {
	var out struct {
		Benchmarks []string `json:"benchmarks"`
		Mixes      []string `json:"mixes"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/benchmarks", nil, &out); err != nil {
		return nil, nil, err
	}
	return out.Benchmarks, out.Mixes, nil
}

// UploadTrace posts framed lnuca-trace-v1 bytes (what Trace.Encode or a
// .lntrace file holds) to the service's content-addressed trace store
// and returns the decoded provenance header — its ID is what a
// Request.Trace replay names. Re-uploading the same trace is idempotent.
func (c *Client) UploadTrace(ctx context.Context, data []byte) (TraceInfo, error) {
	var hdr TraceInfo
	err := c.doRaw(ctx, http.MethodPost, "/v1/traces", bytes.NewReader(data), "application/octet-stream", &hdr)
	return hdr, err
}

// Traces lists the provenance headers of every trace the service holds.
func (c *Client) Traces(ctx context.Context) ([]TraceInfo, error) {
	var out struct {
		Traces []TraceInfo `json:"traces"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/traces", nil, &out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// TraceInfo fetches one stored trace's provenance header by content
// hash.
func (c *Client) TraceInfo(ctx context.Context, id string) (TraceInfo, error) {
	var hdr TraceInfo
	err := c.do(ctx, http.MethodGet, "/v1/traces/"+url.PathEscape(id), nil, &hdr)
	return hdr, err
}

// Submit posts one Request and returns its record immediately — Status
// is StatusDone when the service answered from its result cache.
func (c *Client) Submit(ctx context.Context, req Request) (JobRecord, error) {
	span, sctx := c.Tracer.Start(ctx, "lnuca.client.submit")
	if req.Benchmark != "" {
		span.SetAttr("benchmark", req.Benchmark)
	}
	var rec JobRecord
	err := c.do(sctx, http.MethodPost, "/v1/jobs", req, &rec)
	span.SetError(err)
	span.Finish()
	c.shipSpans(ctx)
	return rec, err
}

// shipSpans drains EnableTracing's collector to POST /v1/spans. Best
// effort: telemetry loss never surfaces as an API error.
func (c *Client) shipSpans(ctx context.Context) {
	if c.spanCol == nil {
		return
	}
	spans := c.spanCol.Drain()
	if len(spans) == 0 {
		return
	}
	_ = c.do(ctx, http.MethodPost, "/v1/spans", map[string]interface{}{"spans": spans}, nil)
}

// Job polls one submitted run by ID.
func (c *Client) Job(ctx context.Context, id string) (JobRecord, error) {
	var rec JobRecord
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &rec)
	return rec, err
}

// Cancel aborts a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (JobRecord, error) {
	var rec JobRecord
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &rec)
	return rec, err
}

// Wait polls a job until it reaches a terminal state, streaming every
// intermediate snapshot (with its Progress fraction) to onUpdate when
// non-nil. It returns the terminal record, or the context's error.
func (c *Client) Wait(ctx context.Context, id string, onUpdate func(JobRecord)) (JobRecord, error) {
	ticker := time.NewTicker(c.pollInterval())
	defer ticker.Stop()
	for {
		rec, err := c.Job(ctx, id)
		if err != nil {
			return JobRecord{}, err
		}
		if onUpdate != nil {
			onUpdate(rec)
		}
		if rec.Status.Terminal() {
			return rec, nil
		}
		select {
		case <-ctx.Done():
			return rec, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Run implements Runner: Submit then Wait, converting the terminal
// record. A failed or canceled job is an error.
func (c *Client) Run(ctx context.Context, req Request) (Result, error) {
	rec, err := c.Submit(ctx, req)
	if err != nil {
		return Result{}, err
	}
	if !rec.Status.Terminal() {
		if rec, err = c.Wait(ctx, rec.ID, nil); err != nil {
			return Result{}, err
		}
	}
	return resultOfRecord(rec)
}

// Lookup consults the service's result cache by request content without
// enqueuing work: (result, true, nil) on a hit, (zero, false, nil) on a
// clean miss.
func (c *Client) Lookup(ctx context.Context, req Request) (Result, bool, error) {
	key, err := req.Key()
	if err != nil {
		return Result{}, false, err
	}
	q := url.Values{}
	set := func(k, v string) {
		if v != "" {
			q.Set(k, v)
		}
	}
	set("hierarchy", req.Hierarchy)
	set("benchmark", req.Benchmark)
	set("mix", req.Mix)
	set("trace", req.Trace)
	set("mode", req.Mode)
	if req.Levels != 0 {
		q.Set("levels", strconv.Itoa(req.Levels))
	}
	if req.Cores != 0 {
		q.Set("cores", strconv.Itoa(req.Cores))
	}
	if req.Warmup != 0 {
		q.Set("warmup", strconv.FormatUint(req.Warmup, 10))
	}
	if req.Measure != 0 {
		q.Set("measure", strconv.FormatUint(req.Measure, 10))
	}
	if req.Seed != 0 {
		q.Set("seed", strconv.FormatUint(req.Seed, 10))
	}
	var res orchestrator.JobResult
	err = c.do(ctx, http.MethodGet, "/v1/results?"+q.Encode(), nil, &res)
	if apiErr, ok := err.(*APIError); ok && apiErr.Status == http.StatusNotFound {
		return Result{}, false, nil
	}
	if err != nil {
		return Result{}, false, err
	}
	return resultFrom(key, &res, true), true, nil
}

// SweepSubmission is the service's answer to a sweep: its ID plus the
// per-cell records.
type SweepSubmission struct {
	ID   string      `json:"id"`
	Jobs []JobRecord `json:"jobs"`
}

// SubmitSweep fans a Sweep out on the service: one job per matrix cell,
// deduplicated and cache-served exactly as individual Submits would be.
func (c *Client) SubmitSweep(ctx context.Context, sweep Sweep) (SweepSubmission, error) {
	// The sweep span traces the submission round trip only: each cell
	// roots its own trace on the daemon (a thousand-point sweep sharing
	// one trace would be unreadable and would overflow any per-trace
	// span bound).
	span, sctx := c.Tracer.Start(ctx, "lnuca.client.sweep")
	var sub SweepSubmission
	err := c.do(sctx, http.MethodPost, "/v1/sweeps", sweep, &sub)
	span.SetError(err)
	span.Finish()
	c.shipSpans(ctx)
	return sub, err
}

// Sweep polls a sweep's aggregated status.
func (c *Client) Sweep(ctx context.Context, id string) (SweepStatus, error) {
	var st SweepStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+url.PathEscape(id), nil, &st)
	return st, err
}

// WaitSweep polls a sweep until every cell is terminal, streaming each
// aggregated snapshot to onUpdate when non-nil.
func (c *Client) WaitSweep(ctx context.Context, id string, onUpdate func(SweepStatus)) (SweepStatus, error) {
	ticker := time.NewTicker(c.pollInterval())
	defer ticker.Stop()
	for {
		st, err := c.Sweep(ctx, id)
		if err != nil {
			return SweepStatus{}, err
		}
		if onUpdate != nil {
			onUpdate(st)
		}
		if st.Done {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-ticker.C:
		}
	}
}

// RunSweep submits a sweep and waits it to completion.
func (c *Client) RunSweep(ctx context.Context, sweep Sweep, onUpdate func(SweepStatus)) (SweepStatus, error) {
	sub, err := c.SubmitSweep(ctx, sweep)
	if err != nil {
		return SweepStatus{}, err
	}
	return c.WaitSweep(ctx, sub.ID, onUpdate)
}

// resultOfRecord converts a terminal job record into a Result.
func resultOfRecord(rec JobRecord) (Result, error) {
	switch rec.Status {
	case StatusDone:
		if rec.Result == nil {
			return Result{}, fmt.Errorf("lightnuca: job %s done without a result", rec.ID)
		}
		return resultFrom(rec.Key, rec.Result, rec.Cached), nil
	case StatusFailed:
		return Result{}, fmt.Errorf("lightnuca: job %s failed: %s", rec.ID, rec.Error)
	case StatusCanceled:
		return Result{}, fmt.Errorf("lightnuca: job %s canceled", rec.ID)
	default:
		return Result{}, fmt.Errorf("lightnuca: job %s not terminal (status %s)", rec.ID, rec.Status)
	}
}
