package lightnuca_test

import (
	"strings"
	"testing"

	lightnuca "repro"
)

func TestRunQuickstartPath(t *testing.T) {
	res, err := lightnuca.Run(lightnuca.LNUCAPlusL3, "453.povray", lightnuca.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Cycles == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Config != "LN3-144KB" {
		t.Fatalf("Config = %q, want LN3-144KB", res.Config)
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
	if res.Stats.Counter("core.committed") == 0 {
		t.Fatal("stats not populated")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := lightnuca.Run(lightnuca.Conventional, "999.bogus", lightnuca.Options{}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBenchmarksList(t *testing.T) {
	names := lightnuca.Benchmarks()
	if len(names) != 28 {
		t.Fatalf("got %d benchmarks, want 28", len(names))
	}
}

// TestBenchmarksDefensiveCopy: the returned slice is the caller's;
// scribbling on it must not corrupt the workload catalog another caller
// (or a later Run) reads.
func TestBenchmarksDefensiveCopy(t *testing.T) {
	names := lightnuca.Benchmarks()
	orig := names[0]
	for i := range names {
		names[i] = "666.mutated"
	}
	fresh := lightnuca.Benchmarks()
	if fresh[0] != orig {
		t.Fatalf("catalog mutated through the returned slice: %q", fresh[0])
	}
	if _, err := lightnuca.Run(lightnuca.Conventional, orig, lightnuca.Options{}); err != nil {
		t.Fatalf("catalog lookup broken after mutation: %v", err)
	}
}

// TestRunRejectsHalfSpecifiedWindow: a warmup without a measured window
// used to be silently ignored; it must now be an error.
func TestRunRejectsHalfSpecifiedWindow(t *testing.T) {
	_, err := lightnuca.Run(lightnuca.Conventional, "403.gcc", lightnuca.Options{
		WarmupInstructions: 1000,
	})
	if err == nil {
		t.Fatal("warmup-only window accepted")
	}
	if !strings.Contains(err.Error(), "measured window") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestTopology(t *testing.T) {
	out, err := lightnuca.Topology(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "14 tiles") || !strings.Contains(out, "144 KB") {
		t.Fatalf("topology summary wrong:\n%s", out)
	}
	if _, err := lightnuca.Topology(1); err == nil {
		t.Fatal("1-level topology accepted")
	}
}

func TestTileTimingReport(t *testing.T) {
	out := lightnuca.TileTimingReport()
	if !strings.Contains(out, "FITS") {
		t.Fatalf("8KB tile should fit the cycle:\n%s", out)
	}
}

func TestAreaTable(t *testing.T) {
	if !strings.Contains(lightnuca.AreaTable(), "LN3-144KB") {
		t.Fatal("area table missing LN3 row")
	}
}

func TestCustomWindow(t *testing.T) {
	res, err := lightnuca.Run(lightnuca.Conventional, "403.gcc", lightnuca.Options{
		WarmupInstructions:  1000,
		MeasureInstructions: 5000,
		Seed:                7,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Stats.Counter("core.committed")
	if got < 4000 || got > 6000 {
		t.Fatalf("measured %d instructions, want ~5000", got)
	}
}
